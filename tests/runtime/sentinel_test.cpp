// Robustness-collapse sentinel: the BIM-probe health hook must never
// perturb a healthy run (bit-identical parameters with or without it),
// must trip the trainer's rollback machinery on an injected collapse,
// and must throw TrainingDivergedError — the signal a supervised job
// absorbs as DEGRADED — when the collapse persists.
#include <gtest/gtest.h>

#include <vector>

#include "common/contract.h"
#include "core/factory.h"
#include "core/sentinel.h"
#include "data/synthetic.h"
#include "nn/zoo.h"

namespace satd::core {
namespace {

const data::DatasetPair& digits() {
  static const data::DatasetPair pair = [] {
    data::SyntheticConfig cfg;
    cfg.train_size = 120;
    cfg.test_size = 30;
    cfg.seed = 201;
    return data::make_synthetic_digits(cfg);
  }();
  return pair;
}

TrainConfig config(std::size_t epochs) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.seed = 17;
  cfg.eps = 0.15f;
  return cfg;
}

SentinelConfig sentinel_config() {
  SentinelConfig cfg;
  cfg.eps = 0.15f;
  cfg.iterations = 2;  // a cheap probe is enough for these tests
  return cfg;
}

data::Dataset probe() { return digits().train.slice(0, 32); }

std::vector<Tensor> params_of(nn::Sequential& model) {
  std::vector<Tensor> params;
  for (Tensor* p : model.parameters()) params.push_back(*p);
  return params;
}

TEST(Sentinel, HealthyRunIsBitIdenticalWithSentinelAttached) {
  const std::size_t epochs = 3;
  std::vector<Tensor> bare;
  {
    Rng rng(3);
    nn::Sequential model = nn::zoo::build("mlp_small", rng);
    auto trainer = make_trainer("fgsm_adv", model, config(epochs));
    trainer->fit(digits().train);
    bare = params_of(model);
  }
  std::vector<Tensor> watched;
  {
    Rng rng(3);
    nn::Sequential model = nn::zoo::build("mlp_small", rng);
    auto trainer = make_trainer("fgsm_adv", model, config(epochs));
    RobustnessSentinel sentinel(probe(), sentinel_config());
    // Pin the probe reading to a healthy constant so this test stays
    // about RNG/parameter isolation, not about what the tiny model's
    // real robust accuracy happens to be.
    sentinel.set_probe_override(
        [](std::size_t, float) { return 0.5f; });
    sentinel.attach(*trainer);
    trainer->fit(digits().train);
    EXPECT_EQ(sentinel.trips(), 0u);
    watched = params_of(model);
  }
  ASSERT_EQ(bare.size(), watched.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_TRUE(bare[i].equals(watched[i]))
        << "sentinel perturbed parameter " << i << " of a healthy run";
  }
}

TEST(Sentinel, TransientCollapseRollsBackAndRecovers) {
  Rng rng(3);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  auto trainer = make_trainer("fgsm_adv", model, config(4));
  RobustnessSentinel sentinel(probe(), sentinel_config());
  // Healthy at 0.6 until epoch 2's first check collapses to 0.05; the
  // retried epoch (and everything after) reads healthy again.
  std::size_t collapses_served = 0;
  sentinel.set_probe_override(
      [&collapses_served](std::size_t epoch, float) -> float {
        if (epoch == 2 && collapses_served == 0) {
          ++collapses_served;
          return 0.05f;
        }
        return 0.6f;
      });
  sentinel.attach(*trainer);

  const TrainReport report = trainer->fit(digits().train);
  EXPECT_EQ(sentinel.trips(), 1u);
  ASSERT_EQ(report.divergence_events.size(), 1u);
  EXPECT_EQ(report.divergence_events[0].epoch, 2u);
  EXPECT_EQ(report.divergence_events[0].reason, "robust_collapse");
  EXPECT_EQ(report.epochs.size(), 4u);  // the run still completed
  EXPECT_FALSE(report.stopped_early);
}

TEST(Sentinel, PersistentCollapseThrowsTrainingDiverged) {
  Rng rng(3);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg = config(4);
  cfg.divergence_max_retries = 2;
  auto trainer = make_trainer("fgsm_adv", model, cfg);
  RobustnessSentinel sentinel(probe(), sentinel_config());
  sentinel.set_probe_override([](std::size_t epoch, float) {
    return epoch < 2 ? 0.6f : 0.0f;  // arms the baseline, then collapses
  });
  sentinel.attach(*trainer);
  EXPECT_THROW(trainer->fit(digits().train), TrainingDivergedError);
  EXPECT_GE(sentinel.trips(), 2u);
}

TEST(Sentinel, DoesNotArmBelowBaseline) {
  Rng rng(1);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  RobustnessSentinel sentinel(probe(), sentinel_config());
  // A weak model living at 0.1 probe accuracy (< min_baseline 0.2) must
  // never trip, even when the reading halves.
  sentinel.set_probe_override([](std::size_t epoch, float) {
    return epoch < 2 ? 0.1f : 0.04f;
  });
  for (std::size_t epoch = 0; epoch < 4; ++epoch) {
    EXPECT_EQ(sentinel.check(epoch, model), nullptr);
  }
  EXPECT_EQ(sentinel.trips(), 0u);
}

TEST(Sentinel, RespectsCheckPeriod) {
  Rng rng(1);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  SentinelConfig cfg = sentinel_config();
  cfg.period = 3;
  RobustnessSentinel sentinel(probe(), cfg);
  std::vector<std::size_t> checked_epochs;
  sentinel.set_probe_override([&checked_epochs](std::size_t epoch, float acc) {
    checked_epochs.push_back(epoch);
    return acc;
  });
  for (std::size_t epoch = 0; epoch < 7; ++epoch) {
    sentinel.check(epoch, model);
  }
  EXPECT_EQ(checked_epochs, (std::vector<std::size_t>{2, 5}));
}

TEST(Sentinel, TracksBestAndLastAccuracy) {
  Rng rng(1);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  RobustnessSentinel sentinel(probe(), sentinel_config());
  const std::vector<float> readings{0.3f, 0.5f, 0.4f};
  sentinel.set_probe_override([&readings](std::size_t epoch, float) {
    return readings[epoch];
  });
  for (std::size_t epoch = 0; epoch < readings.size(); ++epoch) {
    EXPECT_EQ(sentinel.check(epoch, model), nullptr);
  }
  EXPECT_FLOAT_EQ(sentinel.best_accuracy(), 0.5f);
  EXPECT_FLOAT_EQ(sentinel.last_accuracy(), 0.4f);
}

TEST(Sentinel, RejectsDegenerateConfiguration) {
  EXPECT_THROW(RobustnessSentinel(digits().train.slice(0, 0),
                                  sentinel_config()),
               ContractViolation);
  SentinelConfig zero_period = sentinel_config();
  zero_period.period = 0;
  EXPECT_THROW(RobustnessSentinel(probe(), zero_period), ContractViolation);
  SentinelConfig bad_fraction = sentinel_config();
  bad_fraction.collapse_fraction = 1.5f;
  EXPECT_THROW(RobustnessSentinel(probe(), bad_fraction), ContractViolation);
}

}  // namespace
}  // namespace satd::core
