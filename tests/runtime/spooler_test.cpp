// Deterministic suite for the multi-process job spooler: the entire
// launch / poll / watchdog / retry / adopt state machine runs on a
// FakeClock with scripted FakeProcessRunner children, so every scenario
// — including kill-9 recovery — is exact and takes microseconds.
#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/durable_io.h"
#include "runtime/semaphore.h"
#include "runtime/spooler.h"
#include "runtime/supervisor.h"  // SimulatedCrashError, fault::disarm

namespace satd::runtime {
namespace {

namespace fs = std::filesystem;

class SpoolerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm();
    fault::disarm_spool_faults();
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    // Unique per test: the suite runs under `ctest -j` next to itself.
    dir_ = fs::temp_directory_path() /
           (std::string("satd_spooler_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    manifest_path_ = (dir_ / "manifest.bin").string();
  }
  void TearDown() override {
    fault::disarm();
    fault::disarm_spool_faults();
    fs::remove_all(dir_);
  }

  Spooler::Options options(FakeClock& clock, FakeProcessRunner& runner) {
    Spooler::Options o;
    o.manifest_path = manifest_path_;
    o.fingerprint = "test";
    o.clock = &clock;
    o.runner = &runner;
    o.backoff.base_delay = 1.0;
    o.backoff.multiplier = 2.0;
    o.backoff.max_delay = 8.0;
    o.backoff.jitter_fraction = 0.0;
    o.slots = 2;
    o.poll_interval = 0.05;
    o.kill_grace = 5.0;
    return o;
  }

  /// The factory used throughout: argv[0] is the job name, which is also
  /// the FakeProcessRunner script key.
  static Spooler::SpawnFactory name_factory() {
    return [](const Job& job, std::size_t) {
      SpawnSpec spec;
      spec.argv = {job.name};
      return spec;
    };
  }

  Job make_job(const std::string& name, std::vector<std::string> outputs,
               std::vector<std::string> deps = {},
               std::size_t max_attempts = 3, double deadline = kNoDeadline) {
    Job job;
    job.name = name;
    job.outputs = std::move(outputs);
    job.deps = std::move(deps);
    job.max_attempts = max_attempts;
    job.deadline_seconds = deadline;
    return job;
  }

  std::string out_path(const std::string& leaf) {
    return (dir_ / leaf).string();
  }

  /// An on_exit hook that writes the job's output file.
  std::function<void()> writes(const std::string& path,
                               const std::string& payload = "payload\n") {
    return [path, payload] { durable::atomic_write_file(path, payload); };
  }

  const JobOutcome& outcome_of(const MatrixReport& report,
                               const std::string& name) {
    for (const auto& job : report.jobs) {
      if (job.name == name) return job;
    }
    ADD_FAILURE() << "no outcome for " << name;
    static JobOutcome missing;
    return missing;
  }

  fs::path dir_;
  std::string manifest_path_;
};

TEST_F(SpoolerTest, RunsDependencyOrderedMatrixWithResourceAccounting) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  const std::string out_a = out_path("a.csv"), out_b = out_path("b.csv");
  runner.enqueue("a", {.duration = 1.0,
                       .peak_rss_kb = 4096,
                       .user_seconds = 0.8,
                       .sys_seconds = 0.1,
                       .on_exit = writes(out_a)});
  runner.enqueue("b", {.duration = 2.0,
                       .peak_rss_kb = 8192,
                       .on_exit = writes(out_b)});

  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("b", {out_b}, {"a"}));
  spooler.add(make_job("a", {out_a}));
  const MatrixReport report = spooler.run();

  EXPECT_TRUE(report.all_done());
  EXPECT_EQ(runner.spawn_count(), 2u);
  // b depends on a, so it must have been spawned strictly after.
  ASSERT_EQ(runner.spawned().size(), 2u);
  EXPECT_EQ(runner.spawned()[0].argv[0], "a");
  EXPECT_EQ(runner.spawned()[1].argv[0], "b");

  const JobOutcome& a = outcome_of(report, "a");
  EXPECT_EQ(a.state, JobState::kDone);
  EXPECT_EQ(a.attempts, 1u);
  EXPECT_EQ(a.kind, FailureKind::kNone);
  EXPECT_EQ(a.usage.peak_rss_kb, 4096);
  EXPECT_DOUBLE_EQ(a.usage.user_seconds, 0.8);
  EXPECT_DOUBLE_EQ(a.usage.sys_seconds, 0.1);
  EXPECT_DOUBLE_EQ(a.usage.wall_seconds, 1.0);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("rss="), std::string::npos);
}

TEST_F(SpoolerTest, SlotBudgetCapsConcurrency) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  std::vector<Job> jobs;
  Spooler spooler(options(clock, runner), name_factory());
  for (int i = 0; i < 5; ++i) {
    const std::string name = "job" + std::to_string(i);
    const std::string out = out_path(name + ".out");
    runner.enqueue(name, {.duration = 1.0, .on_exit = writes(out)});
    spooler.add(make_job(name, {out}));
  }
  EXPECT_TRUE(spooler.run().all_done());
  EXPECT_EQ(runner.spawn_count(), 5u);
  EXPECT_LE(runner.max_concurrent(), 2u);  // slots = 2
  EXPECT_GE(runner.max_concurrent(), 2u);  // and it does use both
}

TEST_F(SpoolerTest, CrashedChildIsRetriedOnBackoffSchedule) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  const std::string out = out_path("flaky.out");
  runner.enqueue("flaky", {.duration = 0.5, .term_signal = SIGSEGV,
                           .on_exit = {}});
  runner.enqueue("flaky", {.duration = 0.5, .on_exit = writes(out)});

  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("flaky", {out}));
  const MatrixReport report = spooler.run();

  EXPECT_TRUE(report.all_done());
  EXPECT_EQ(outcome_of(report, "flaky").attempts, 2u);
  EXPECT_EQ(runner.spawn_count(), 2u);
  EXPECT_TRUE(fs::exists(out));
}

TEST_F(SpoolerTest, SignalDeathRecordsCrashedKindAndSignal) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.enqueue("victim", {.duration = 0.5, .term_signal = SIGSEGV,
                            .on_exit = {}});

  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("victim", {out_path("v.out")}, {},
                       /*max_attempts=*/1));
  const MatrixReport report = spooler.run();

  const JobOutcome& out = outcome_of(report, "victim");
  EXPECT_EQ(out.state, JobState::kDegraded);
  EXPECT_EQ(out.kind, FailureKind::kCrashed);
  EXPECT_EQ(out.exit_signal, SIGSEGV);
  EXPECT_NE(out.reason.find("signal 11"), std::string::npos);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("CRASHED"), std::string::npos);
  EXPECT_NE(text.find("SIGSEGV"), std::string::npos);
}

TEST_F(SpoolerTest, NonzeroExitRecordsFailedKindAndExitCode) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.enqueue("broken", {.duration = 0.5, .exit_code = 3, .on_exit = {}});

  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("broken", {out_path("b.out")}, {}, 1));
  const MatrixReport report = spooler.run();

  const JobOutcome& out = outcome_of(report, "broken");
  EXPECT_EQ(out.state, JobState::kDegraded);
  EXPECT_EQ(out.kind, FailureKind::kFailed);
  EXPECT_EQ(out.exit_code, 3);
  EXPECT_NE(out.reason.find("exit 3"), std::string::npos);
}

TEST_F(SpoolerTest, CooperativeOverrunExitCodeRecordsTimeoutKind) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.enqueue("slow",
                 {.duration = 0.5, .exit_code = Spooler::kExitOverrun,
                  .on_exit = {}});

  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("slow", {out_path("s.out")}, {}, 1));
  const MatrixReport report = spooler.run();

  const JobOutcome& out = outcome_of(report, "slow");
  EXPECT_EQ(out.state, JobState::kDegraded);
  EXPECT_EQ(out.kind, FailureKind::kTimeout);
  EXPECT_EQ(out.exit_code, Spooler::kExitOverrun);
  EXPECT_NE(out.reason.find("deadline_overrun"), std::string::npos);
}

TEST_F(SpoolerTest, WatchdogSigkillsChildPastDeadlinePlusGrace) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.enqueue("hung", {.duration = 1e9,
                          .on_exit = {}});  // never exits on its own

  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("hung", {out_path("h.out")}, {}, /*max_attempts=*/1,
                       /*deadline=*/10.0));
  const MatrixReport report = spooler.run();

  const JobOutcome& out = outcome_of(report, "hung");
  EXPECT_EQ(out.state, JobState::kDegraded);
  EXPECT_EQ(out.kind, FailureKind::kTimeout);
  EXPECT_NE(out.reason.find("SIGKILLed past the watchdog"),
            std::string::npos);
  ASSERT_EQ(runner.kills().size(), 1u);
  EXPECT_EQ(runner.kills()[0].second, SIGKILL);
  // The kill fired after deadline + grace (10 + 5), not at the deadline.
  EXPECT_GT(clock.now(), 15.0);
  EXPECT_LT(clock.now(), 16.0);
}

TEST_F(SpoolerTest, CleanExitWithMissingOutputsIsAFailure) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.enqueue("liar", {.duration = 0.5, .exit_code = 0,
                          .on_exit = {}});  // no on_exit

  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("liar", {out_path("missing.out")}, {}, 1));
  const MatrixReport report = spooler.run();

  const JobOutcome& out = outcome_of(report, "liar");
  EXPECT_EQ(out.state, JobState::kDegraded);
  EXPECT_EQ(out.kind, FailureKind::kFailed);
  EXPECT_NE(out.reason.find("outputs are missing"), std::string::npos);
}

TEST_F(SpoolerTest, DegradedDependencyCascades) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.enqueue("root", {.duration = 0.5, .exit_code = 1, .on_exit = {}});
  const std::string out_ok = out_path("ok.out");
  runner.enqueue("independent", {.duration = 0.5, .on_exit = writes(out_ok)});

  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("root", {out_path("r.out")}, {}, 1));
  spooler.add(make_job("mid", {out_path("m.out")}, {"root"}));
  spooler.add(make_job("leaf", {out_path("l.out")}, {"mid"}));
  spooler.add(make_job("independent", {out_ok}));
  const MatrixReport report = spooler.run();

  EXPECT_EQ(report.done(), 1u);
  EXPECT_EQ(report.degraded(), 3u);
  EXPECT_EQ(outcome_of(report, "mid").reason,
            "dependency not satisfied: root");
  EXPECT_EQ(outcome_of(report, "leaf").reason,
            "dependency not satisfied: mid");
  EXPECT_EQ(outcome_of(report, "independent").state, JobState::kDone);
  // Only root and independent ever spawned a child.
  EXPECT_EQ(runner.spawn_count(), 2u);
}

TEST_F(SpoolerTest, CoreBudgetPinsChildrenAndExportsMatchingThreads) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  Spooler::Options o = options(clock, runner);
  o.cores = {0, 1, 2, 3};  // 2 slots -> 2 cores per child
  Spooler spooler(std::move(o), name_factory());
  for (int i = 0; i < 4; ++i) {
    const std::string name = "job" + std::to_string(i);
    const std::string out = out_path(name + ".out");
    runner.enqueue(name, {.duration = 1.0, .on_exit = writes(out)});
    spooler.add(make_job(name, {out}));
  }
  const MatrixReport report = spooler.run();
  EXPECT_TRUE(report.all_done());

  for (const SpawnSpec& spec : runner.spawned()) {
    ASSERT_EQ(spec.cpus.size(), 2u) << spec.argv[0];
    for (int cpu : spec.cpus) {
      EXPECT_GE(cpu, 0);
      EXPECT_LE(cpu, 3);
    }
    bool exported = false;
    for (const auto& [key, value] : spec.env) {
      if (key == "SATD_THREADS") {
        exported = true;
        EXPECT_EQ(value, "2");
      }
    }
    EXPECT_TRUE(exported) << spec.argv[0];
  }
  // Concurrent children never share a core.
  for (const auto& job : report.jobs) {
    EXPECT_EQ(job.cores.size(), 2u);
  }
}

TEST_F(SpoolerTest, ConcurrentChildrenNeverShareACore) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  Spooler::Options o = options(clock, runner);
  o.cores = {0, 1};  // one core per child
  Spooler spooler(std::move(o), name_factory());
  // Two long jobs overlap; their core assignments must be disjoint.
  for (const char* name : {"left", "right"}) {
    const std::string out = out_path(std::string(name) + ".out");
    runner.enqueue(name, {.duration = 5.0, .on_exit = writes(out)});
    spooler.add(make_job(name, {out}));
  }
  EXPECT_TRUE(spooler.run().all_done());
  ASSERT_EQ(runner.spawned().size(), 2u);
  ASSERT_EQ(runner.spawned()[0].cpus.size(), 1u);
  ASSERT_EQ(runner.spawned()[1].cpus.size(), 1u);
  EXPECT_NE(runner.spawned()[0].cpus[0], runner.spawned()[1].cpus[0]);
}

TEST_F(SpoolerTest, ResumeSkipsDoneJobsWithoutRespawning) {
  const std::string out = out_path("done.out");
  {
    FakeClock clock;
    FakeProcessRunner runner(clock);
    runner.enqueue("done", {.duration = 1.0, .on_exit = writes(out)});
    Spooler spooler(options(clock, runner), name_factory());
    spooler.add(make_job("done", {out}));
    EXPECT_TRUE(spooler.run().all_done());
  }
  {
    FakeClock clock;
    FakeProcessRunner runner(clock);
    Spooler spooler(options(clock, runner), name_factory());
    spooler.add(make_job("done", {out}));
    const MatrixReport report = spooler.run();
    EXPECT_TRUE(report.all_done());
    EXPECT_TRUE(outcome_of(report, "done").resumed);
    EXPECT_EQ(runner.spawn_count(), 0u);
  }
}

TEST_F(SpoolerTest, ResumeDeclaresDeadOrphanCrashedAndRetries) {
  const std::string out = out_path("orphaned.out");
  {
    // A previous spooler journaled RUNNING with a pid that no longer
    // exists (nothing registered in the runner).
    Manifest journal(manifest_path_, "test");
    JobRecord rec{"orphaned", JobState::kRunning, 1, "", {out}};
    rec.pid = 4242;
    rec.start_id = "long-gone";
    journal.record(std::move(rec));
  }
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.enqueue("orphaned", {.duration = 1.0, .on_exit = writes(out)});
  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("orphaned", {out}));
  const MatrixReport report = spooler.run();

  const JobOutcome& job = outcome_of(report, "orphaned");
  EXPECT_EQ(job.state, JobState::kDone);
  EXPECT_EQ(job.attempts, 2u);  // the crashed attempt spent budget
  EXPECT_EQ(runner.spawn_count(), 1u);
}

TEST_F(SpoolerTest, DeadOrphanOnFinalAttemptDegradesAsCrashed) {
  const std::string out = out_path("doomed.out");
  {
    Manifest journal(manifest_path_, "test");
    JobRecord rec{"doomed", JobState::kRunning, 1, "", {out}};
    rec.pid = 4242;
    rec.start_id = "long-gone";
    journal.record(std::move(rec));
  }
  FakeClock clock;
  FakeProcessRunner runner(clock);
  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("doomed", {out}, {}, /*max_attempts=*/1));
  const MatrixReport report = spooler.run();

  const JobOutcome& job = outcome_of(report, "doomed");
  EXPECT_EQ(job.state, JobState::kDegraded);
  EXPECT_EQ(job.kind, FailureKind::kCrashed);
  EXPECT_NE(job.reason.find("orphan pid 4242 is gone"), std::string::npos);
  EXPECT_EQ(runner.spawn_count(), 0u);
}

TEST_F(SpoolerTest, ResumeAdoptsLiveOrphanToCompletion) {
  const std::string out = out_path("adopted.out");
  {
    Manifest journal(manifest_path_, "test");
    JobRecord rec{"adopted", JobState::kRunning, 1, "", {out}};
    rec.pid = 777;
    rec.start_id = "orphan-777";
    journal.record(std::move(rec));
  }
  FakeClock clock;
  FakeProcessRunner runner(clock);
  // The orphan keeps running until t=5, then exits having written its
  // outputs — the resumed spooler must supervise it, not respawn it.
  runner.add_orphan(777, "orphan-777", /*dies_at=*/5.0, writes(out));
  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("adopted", {out}));
  const MatrixReport report = spooler.run();

  const JobOutcome& job = outcome_of(report, "adopted");
  EXPECT_EQ(job.state, JobState::kDone);
  EXPECT_EQ(job.attempts, 1u);
  EXPECT_EQ(job.reason, "adopted orphan finished");
  EXPECT_EQ(runner.spawn_count(), 0u);  // never respawned
}

TEST_F(SpoolerTest, AdoptedOrphanDyingWithoutOutputsIsRetried) {
  const std::string out = out_path("halfdone.out");
  {
    Manifest journal(manifest_path_, "test");
    JobRecord rec{"halfdone", JobState::kRunning, 1, "", {out}};
    rec.pid = 778;
    rec.start_id = "orphan-778";
    journal.record(std::move(rec));
  }
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.add_orphan(778, "orphan-778", /*dies_at=*/2.0);  // dies empty
  runner.enqueue("halfdone", {.duration = 1.0, .on_exit = writes(out)});
  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("halfdone", {out}));
  const MatrixReport report = spooler.run();

  const JobOutcome& job = outcome_of(report, "halfdone");
  EXPECT_EQ(job.state, JobState::kDone);
  EXPECT_EQ(job.attempts, 2u);
  EXPECT_EQ(runner.spawn_count(), 1u);
}

TEST_F(SpoolerTest, AdoptedOrphanIsSigkilledPastItsWatchdog) {
  const std::string out = out_path("runaway.out");
  {
    Manifest journal(manifest_path_, "test");
    JobRecord rec{"runaway", JobState::kRunning, 1, "", {out}};
    rec.pid = 779;
    rec.start_id = "orphan-779";
    journal.record(std::move(rec));
  }
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.add_orphan(779, "orphan-779", /*dies_at=*/1e9);  // runs forever
  Spooler spooler(options(clock, runner), name_factory());
  // deadline 10 + grace 5: the adopted orphan is killed at ~15.
  spooler.add(make_job("runaway", {out}, {}, /*max_attempts=*/1,
                       /*deadline=*/10.0));
  const MatrixReport report = spooler.run();

  const JobOutcome& job = outcome_of(report, "runaway");
  EXPECT_EQ(job.state, JobState::kDegraded);
  EXPECT_EQ(job.kind, FailureKind::kTimeout);
  ASSERT_EQ(runner.kills().size(), 1u);
  EXPECT_EQ(runner.kills()[0], (std::pair<int, int>{779, SIGKILL}));
}

TEST_F(SpoolerTest, SimulatedSpoolerCrashLeavesAdoptableJournal) {
  const std::string out = out_path("survivor.out");
  // Episode 1: the spooler "dies" (SIGKILL-equivalent unwind) right
  // after launching the child, which keeps running as an orphan.
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.enqueue("survivor", {.duration = 3.0, .on_exit = writes(out)});
  {
    fault::arm_spool_crash("survivor", 1);
    Spooler spooler(options(clock, runner), name_factory());
    spooler.add(make_job("survivor", {out}));
    EXPECT_THROW(spooler.run(), SimulatedCrashError);
  }

  // The journal reads exactly as a dead spooler would leave it: RUNNING
  // with the child's (pid, start-time) identity.
  int orphan_pid = 0;
  std::string orphan_start_id;
  {
    Manifest journal(manifest_path_, "test");
    ASSERT_TRUE(journal.load());
    const JobRecord* rec = journal.find("survivor");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->state, JobState::kRunning);
    EXPECT_EQ(rec->attempts, 1u);
    ASSERT_GT(rec->pid, 0);
    ASSERT_FALSE(rec->start_id.empty());
    orphan_pid = rec->pid;
    orphan_start_id = rec->start_id;
  }

  // Episode 2: a fresh spooler (sharing the same runner, whose fake
  // child is still running) adopts the orphan and sees it through.
  {
    Spooler spooler(options(clock, runner), name_factory());
    spooler.add(make_job("survivor", {out}));
    const MatrixReport report = spooler.run();
    const JobOutcome& job = outcome_of(report, "survivor");
    EXPECT_EQ(job.state, JobState::kDone);
    EXPECT_EQ(job.attempts, 1u);
    EXPECT_EQ(job.reason, "adopted orphan finished");
  }
  EXPECT_EQ(runner.spawn_count(), 1u);  // the work was never repeated
  EXPECT_EQ(durable::read_file_verified(out), "payload\n");
  (void)orphan_pid;
  (void)orphan_start_id;
}

TEST_F(SpoolerTest, FarmGateBoundsConcurrencyBelowOwnSlots) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  const std::string gate_name =
      "satd_test_gate_" + std::to_string(::getpid()) + "_farm";
  const std::string registry = (dir_ / "gate").string();
  SlotGate::unlink(gate_name, registry);
  // Another "invocation" holds one of the farm's two tokens for the
  // whole run, so this spooler — despite slots=2 — runs one at a time.
  SlotGate other(gate_name, 2, registry);
  ASSERT_TRUE(other.try_acquire());

  Spooler::Options o = options(clock, runner);
  o.gate_name = gate_name;
  o.gate_registry = registry;
  Spooler spooler(std::move(o), name_factory());
  for (int i = 0; i < 3; ++i) {
    const std::string name = "job" + std::to_string(i);
    const std::string out = out_path(name + ".out");
    runner.enqueue(name, {.duration = 1.0, .on_exit = writes(out)});
    spooler.add(make_job(name, {out}));
  }
  const MatrixReport report = spooler.run();
  EXPECT_TRUE(report.all_done());
  EXPECT_EQ(runner.max_concurrent(), 1u);

  other.release();
  SlotGate::unlink(gate_name, registry);
}

TEST_F(SpoolerTest, FarmGateRecoversTokensLeakedByDeadHolder) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  const std::string gate_name =
      "satd_test_gate_" + std::to_string(::getpid()) + "_leak";
  const std::string registry = (dir_ / "gate").string();
  SlotGate::unlink(gate_name, registry);
  {
    // A holder dies (kill -9) with both tokens: locks drop, tokens leak.
    SlotGate dead(gate_name, 2, registry);
    ASSERT_TRUE(dead.try_acquire());
    ASSERT_TRUE(dead.try_acquire());
    dead.abandon_for_test();
  }

  Spooler::Options o = options(clock, runner);
  o.gate_name = gate_name;
  o.gate_registry = registry;
  Spooler spooler(std::move(o), name_factory());
  const std::string out = out_path("after.out");
  runner.enqueue("after", {.duration = 1.0, .on_exit = writes(out)});
  spooler.add(make_job("after", {out}));
  // The spooler's own repair pass must restore the leaked tokens; the
  // run completes instead of waiting forever on an empty semaphore.
  const MatrixReport report = spooler.run();
  EXPECT_TRUE(report.all_done());

  SlotGate::unlink(gate_name, registry);
}

TEST_F(SpoolerTest, SecondLiveSpoolerOnSameManifestIsRejected) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  const std::string out = out_path("solo.out");
  runner.enqueue("solo", {.duration = 1.0, .on_exit = writes(out)});
  Spooler first(options(clock, runner), name_factory());
  first.add(make_job("solo", {out}));
  EXPECT_TRUE(first.run().all_done());

  // `first` is still alive and holds the journal lock; a concurrent
  // spooler on the same manifest must fail fast, not corrupt it.
  FakeClock clock2;
  FakeProcessRunner runner2(clock2);
  Spooler second(options(clock2, runner2), name_factory());
  second.add(make_job("solo", {out}));
  EXPECT_THROW(second.run(), std::runtime_error);
}

TEST_F(SpoolerTest, DuplicateOrAnonymousJobsAreRejected) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("a", {}));
  EXPECT_ANY_THROW(spooler.add(make_job("a", {})));
  EXPECT_ANY_THROW(spooler.add(make_job("", {})));
}

TEST_F(SpoolerTest, UnknownDependencyThrows) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  Spooler spooler(options(clock, runner), name_factory());
  spooler.add(make_job("a", {}, {"ghost"}));
  EXPECT_THROW(spooler.run(), std::invalid_argument);
}

}  // namespace
}  // namespace satd::runtime
