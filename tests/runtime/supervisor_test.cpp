// Chaos suite for the job supervisor: dependency scheduling, retry with
// deterministic backoff, watchdog overruns, graceful degradation, and —
// the headline property — crash-only resume that reproduces bit-identical
// artifacts after a simulated `kill -9`.
//
// All time is a FakeClock and all faults are injected at exact
// (job, attempt) coordinates, so every scenario is deterministic.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/durable_io.h"
#include "runtime/supervisor.h"

namespace satd::runtime {
namespace {

namespace fs = std::filesystem;

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm();
    dir_ = fs::temp_directory_path() / "satd_supervisor_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    manifest_path_ = (dir_ / "manifest.bin").string();
  }
  void TearDown() override {
    fault::disarm();
    fs::remove_all(dir_);
  }

  Supervisor::Options options(FakeClock& clock, double jitter = 0.0) {
    Supervisor::Options o;
    o.manifest_path = manifest_path_;
    o.fingerprint = "test";
    o.clock = &clock;
    o.backoff.base_delay = 1.0;
    o.backoff.multiplier = 2.0;
    o.backoff.max_delay = 8.0;
    o.backoff.jitter_fraction = jitter;
    return o;
  }

  /// A job that logs its execution and succeeds.
  Job ok_job(const std::string& name, std::vector<std::string>& log,
             std::vector<std::string> deps = {}) {
    Job job;
    job.name = name;
    job.deps = std::move(deps);
    job.run = [name, &log](JobContext&) {
      log.push_back(name);
      return JobResult::ok();
    };
    return job;
  }

  const JobOutcome& outcome_of(const MatrixReport& report,
                               const std::string& name) {
    for (const auto& job : report.jobs) {
      if (job.name == name) return job;
    }
    ADD_FAILURE() << "no outcome for " << name;
    static JobOutcome missing;
    return missing;
  }

  fs::path dir_;
  std::string manifest_path_;
};

TEST_F(SupervisorTest, RunsJobsInDependencyOrder) {
  FakeClock clock;
  Supervisor supervisor(options(clock));
  std::vector<std::string> log;
  supervisor.add(ok_job("c", log, {"b"}));
  supervisor.add(ok_job("b", log, {"a"}));
  supervisor.add(ok_job("a", log));
  const MatrixReport report = supervisor.run();
  EXPECT_TRUE(report.all_done());
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(SupervisorTest, UnknownDependencyThrows) {
  FakeClock clock;
  Supervisor supervisor(options(clock));
  std::vector<std::string> log;
  supervisor.add(ok_job("a", log, {"ghost"}));
  EXPECT_THROW(supervisor.run(), std::invalid_argument);
}

TEST_F(SupervisorTest, DependencyCycleThrows) {
  FakeClock clock;
  Supervisor supervisor(options(clock));
  std::vector<std::string> log;
  supervisor.add(ok_job("a", log, {"b"}));
  supervisor.add(ok_job("b", log, {"a"}));
  EXPECT_THROW(supervisor.run(), std::invalid_argument);
}

TEST_F(SupervisorTest, DuplicateJobNameIsRejected) {
  FakeClock clock;
  Supervisor supervisor(options(clock));
  std::vector<std::string> log;
  supervisor.add(ok_job("a", log));
  EXPECT_ANY_THROW(supervisor.add(ok_job("a", log)));
}

TEST_F(SupervisorTest, RetriesWithExponentialBackoffThenSucceeds) {
  FakeClock clock;
  Supervisor supervisor(options(clock));
  std::size_t calls = 0;
  Job job;
  job.name = "flaky";
  job.max_attempts = 5;
  job.run = [&calls](JobContext&) {
    return ++calls < 3 ? JobResult::failed("transient")
                       : JobResult::ok();
  };
  supervisor.add(std::move(job));
  const MatrixReport report = supervisor.run();
  EXPECT_TRUE(report.all_done());
  EXPECT_EQ(outcome_of(report, "flaky").attempts, 3u);
  // Two retries at the jitter-free geometric schedule: 1s then 2s.
  EXPECT_EQ(clock.sleeps(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(SupervisorTest, BackoffScheduleIsReproducibleFromSeed) {
  auto run_schedule = [this] {
    FakeClock clock;
    Supervisor::Options o = options(clock, /*jitter=*/0.2);
    o.manifest_path.clear();  // memory-only; isolate schedules
    Supervisor supervisor(o);
    Job job;
    job.name = "doomed";
    job.max_attempts = 4;
    job.run = [](JobContext&) { return JobResult::failed("always"); };
    supervisor.add(std::move(job));
    supervisor.run();
    return clock.sleeps();
  };
  const auto first = run_schedule();
  ASSERT_EQ(first.size(), 3u);  // 4 attempts -> 3 backoff sleeps
  EXPECT_EQ(first, run_schedule());
}

TEST_F(SupervisorTest, ExhaustedRetriesDegradeWithoutStoppingOthers) {
  FakeClock clock;
  Supervisor supervisor(options(clock));
  std::vector<std::string> log;
  Job bad;
  bad.name = "bad";
  bad.max_attempts = 2;
  bad.run = [](JobContext&) -> JobResult { throw std::runtime_error("boom"); };
  supervisor.add(std::move(bad));
  supervisor.add(ok_job("child", log, {"bad"}));
  supervisor.add(ok_job("independent", log));

  const MatrixReport report = supervisor.run();
  EXPECT_FALSE(report.all_done());
  EXPECT_EQ(report.done(), 1u);
  EXPECT_EQ(report.degraded(), 2u);

  const JobOutcome& bad_out = outcome_of(report, "bad");
  EXPECT_EQ(bad_out.state, JobState::kDegraded);
  EXPECT_EQ(bad_out.attempts, 2u);
  EXPECT_EQ(bad_out.reason, "failed: boom");
  EXPECT_EQ(bad_out.kind, FailureKind::kFailed);

  const JobOutcome& child = outcome_of(report, "child");
  EXPECT_EQ(child.state, JobState::kDegraded);
  EXPECT_EQ(child.reason, "dependency not satisfied: bad");

  EXPECT_EQ(outcome_of(report, "independent").state, JobState::kDone);
  EXPECT_EQ(log, (std::vector<std::string>{"independent"}));
}

TEST_F(SupervisorTest, InjectedHangOverrunsDeadlineAndRetries) {
  FakeClock clock;
  Supervisor supervisor(options(clock));
  fault::arm_job_hang("slow", /*attempt=*/1);
  std::size_t calls = 0;
  Job job;
  job.name = "slow";
  job.deadline_seconds = 10.0;
  job.max_attempts = 3;
  job.run = [&calls](JobContext&) {
    ++calls;
    return JobResult::ok();
  };
  supervisor.add(std::move(job));
  const MatrixReport report = supervisor.run();
  EXPECT_TRUE(report.all_done());
  EXPECT_EQ(outcome_of(report, "slow").attempts, 2u);
  EXPECT_EQ(calls, 1u);  // the hung attempt never reached the body
  // The hang burned 125% of the deadline, then one backoff sleep.
  EXPECT_EQ(clock.sleeps(), (std::vector<double>{12.5, 1.0}));
}

TEST_F(SupervisorTest, PersistentHangDegradesAsOverrun) {
  FakeClock clock;
  Supervisor supervisor(options(clock));
  fault::arm_job_hang("slow", 1);
  fault::arm_job_hang("slow", 2);
  Job job;
  job.name = "slow";
  job.deadline_seconds = 10.0;
  job.max_attempts = 2;
  job.run = [](JobContext&) { return JobResult::ok(); };
  supervisor.add(std::move(job));
  const MatrixReport report = supervisor.run();
  const JobOutcome& out = outcome_of(report, "slow");
  EXPECT_EQ(out.state, JobState::kDegraded);
  EXPECT_EQ(out.reason, "deadline_overrun: injected hang");
  EXPECT_EQ(out.kind, FailureKind::kTimeout);
}

TEST_F(SupervisorTest, FailureAfterDeadlineCountsAsOverrun) {
  FakeClock clock;
  Supervisor supervisor(options(clock));
  Job job;
  job.name = "cooperative";
  job.deadline_seconds = 5.0;
  job.max_attempts = 1;
  // Models a trainer whose stop check fired: the body burned its budget,
  // bailed out mid-work and surfaced an error.
  job.run = [&clock](JobContext& ctx) -> JobResult {
    clock.advance(6.0);
    EXPECT_TRUE(ctx.expired());
    throw std::runtime_error("stopped at epoch boundary");
  };
  supervisor.add(std::move(job));
  const MatrixReport report = supervisor.run();
  const JobOutcome& out = outcome_of(report, "cooperative");
  EXPECT_EQ(out.state, JobState::kDegraded);
  EXPECT_EQ(out.reason, "deadline_overrun: stopped at epoch boundary");
  EXPECT_EQ(out.kind, FailureKind::kTimeout);
}

TEST_F(SupervisorTest, CrashLeavesRunningRecordInJournal) {
  FakeClock clock;
  Supervisor supervisor(options(clock));
  std::vector<std::string> log;
  supervisor.add(ok_job("a", log));
  supervisor.add(ok_job("b", log, {"a"}));
  fault::arm_job_crash("b", /*attempt=*/1);
  EXPECT_THROW(supervisor.run(), SimulatedCrashError);

  // The journal reads exactly as a SIGKILLed process would leave it.
  Manifest journal(manifest_path_, "test");
  ASSERT_TRUE(journal.load());
  EXPECT_EQ(journal.find("a")->state, JobState::kDone);
  const JobRecord* b = journal.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->state, JobState::kRunning);
  EXPECT_EQ(b->attempts, 1u);
}

TEST_F(SupervisorTest, ResumeAfterCrashReproducesIdenticalArtifacts) {
  const std::string out_a = (dir_ / "a.csv").string();
  const std::string out_b = (dir_ / "b.csv").string();
  std::size_t runs_a = 0, runs_b = 0;

  auto writer_job = [](const std::string& name, const std::string& path,
                       const std::string& payload, std::size_t& runs,
                       std::vector<std::string> deps) {
    Job job;
    job.name = name;
    job.deps = std::move(deps);
    job.outputs = {path};
    job.run = [path, payload, &runs](JobContext&) {
      ++runs;
      durable::atomic_write_file(path, payload);
      return JobResult::ok();
    };
    return job;
  };

  // Episode 1: crashes (simulated kill -9) during b's first attempt.
  {
    FakeClock clock;
    Supervisor supervisor(options(clock));
    supervisor.add(writer_job("a", out_a, "artifact-a\n", runs_a, {}));
    supervisor.add(writer_job("b", out_b, "artifact-b\n", runs_b, {"a"}));
    fault::arm_job_crash("b", 1);
    EXPECT_THROW(supervisor.run(), SimulatedCrashError);
    EXPECT_EQ(runs_a, 1u);
    EXPECT_EQ(runs_b, 0u);
  }

  // Episode 2: a fresh supervisor (new process) adopts the journal.
  {
    FakeClock clock;
    Supervisor supervisor(options(clock));
    supervisor.add(writer_job("a", out_a, "artifact-a\n", runs_a, {}));
    supervisor.add(writer_job("b", out_b, "artifact-b\n", runs_b, {"a"}));
    const MatrixReport report = supervisor.run();
    EXPECT_TRUE(report.all_done());

    const JobOutcome& a = outcome_of(report, "a");
    EXPECT_TRUE(a.resumed);          // completed work was not repeated
    EXPECT_EQ(runs_a, 1u);
    const JobOutcome& b = outcome_of(report, "b");
    EXPECT_FALSE(b.resumed);
    EXPECT_EQ(b.attempts, 2u);       // the crashed attempt spent budget
    EXPECT_EQ(runs_b, 1u);
  }

  EXPECT_EQ(durable::read_file_verified(out_a), "artifact-a\n");
  EXPECT_EQ(durable::read_file_verified(out_b), "artifact-b\n");
}

TEST_F(SupervisorTest, DoneRecordWithMissingOutputsReruns) {
  const std::string out = (dir_ / "artifact.bin").string();
  std::size_t runs = 0;
  auto make_job = [&] {
    Job job;
    job.name = "producer";
    job.outputs = {out};
    job.run = [out, &runs](JobContext&) {
      ++runs;
      durable::atomic_write_file(out, "payload");
      return JobResult::ok();
    };
    return job;
  };
  {
    FakeClock clock;
    Supervisor supervisor(options(clock));
    supervisor.add(make_job());
    EXPECT_TRUE(supervisor.run().all_done());
  }
  fs::remove(out);  // cache eviction / operator cleanup
  {
    FakeClock clock;
    Supervisor supervisor(options(clock));
    supervisor.add(make_job());
    const MatrixReport report = supervisor.run();
    EXPECT_TRUE(report.all_done());
    EXPECT_FALSE(outcome_of(report, "producer").resumed);
  }
  EXPECT_EQ(runs, 2u);
  EXPECT_TRUE(fs::exists(out));
}

TEST_F(SupervisorTest, FingerprintChangeInvalidatesResume) {
  std::vector<std::string> log;
  {
    FakeClock clock;
    Supervisor supervisor(options(clock));
    supervisor.add(ok_job("a", log));
    EXPECT_TRUE(supervisor.run().all_done());
  }
  {
    FakeClock clock;
    Supervisor::Options o = options(clock);
    o.fingerprint = "different-scale";
    Supervisor supervisor(o);
    supervisor.add(ok_job("a", log));
    const MatrixReport report = supervisor.run();
    EXPECT_TRUE(report.all_done());
    EXPECT_FALSE(outcome_of(report, "a").resumed);
  }
  EXPECT_EQ(log.size(), 2u);
}

TEST_F(SupervisorTest, ReportListsDegradedReasons) {
  FakeClock clock;
  Supervisor supervisor(options(clock));
  Job bad;
  bad.name = "bad";
  bad.max_attempts = 1;
  bad.run = [](JobContext&) { return JobResult::failed("no such dataset"); };
  supervisor.add(std::move(bad));
  const MatrixReport report = supervisor.run();
  const std::string text = report.to_string();
  EXPECT_NE(text.find("DEGRADED"), std::string::npos);
  EXPECT_NE(text.find("failed: no such dataset"), std::string::npos);
  EXPECT_NE(text.find("0/1 done"), std::string::npos);
}

}  // namespace
}  // namespace satd::runtime
