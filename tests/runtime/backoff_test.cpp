// Retry backoff: geometric growth, cap, bounded jitter, and — the
// property the supervisor's chaos tests lean on — exact reproducibility
// of a schedule from (policy, seed).
#include <gtest/gtest.h>

#include "common/backoff.h"
#include "common/contract.h"

namespace satd {
namespace {

BackoffPolicy no_jitter(double base, double mult, double cap) {
  BackoffPolicy policy;
  policy.base_delay = base;
  policy.multiplier = mult;
  policy.max_delay = cap;
  policy.jitter_fraction = 0.0;
  return policy;
}

TEST(Backoff, GrowsGeometricallyAndCaps) {
  Backoff backoff(no_jitter(1.0, 2.0, 5.0), /*seed=*/1);
  EXPECT_DOUBLE_EQ(backoff.delay(0), 1.0);
  EXPECT_DOUBLE_EQ(backoff.delay(1), 2.0);
  EXPECT_DOUBLE_EQ(backoff.delay(2), 4.0);
  EXPECT_DOUBLE_EQ(backoff.delay(3), 5.0);  // capped
  EXPECT_DOUBLE_EQ(backoff.delay(10), 5.0);
}

TEST(Backoff, JitterStaysWithinConfiguredFraction) {
  BackoffPolicy policy = no_jitter(2.0, 1.0, 2.0);
  policy.jitter_fraction = 0.25;
  Backoff backoff(policy, /*seed=*/7);
  bool saw_jitter = false;
  for (int i = 0; i < 200; ++i) {
    const double d = backoff.delay(0);
    EXPECT_GE(d, 2.0 * 0.75);
    EXPECT_LE(d, 2.0 * 1.25);
    if (d != 2.0) saw_jitter = true;
  }
  EXPECT_TRUE(saw_jitter);
}

TEST(Backoff, SameSeedReplaysIdenticalSchedule) {
  BackoffPolicy policy;  // defaults carry jitter
  Backoff a(policy, 99);
  Backoff b(policy, 99);
  for (std::size_t attempt = 0; attempt < 20; ++attempt) {
    EXPECT_DOUBLE_EQ(a.delay(attempt), b.delay(attempt));
  }
}

TEST(Backoff, DifferentSeedsDiverge) {
  BackoffPolicy policy;
  Backoff a(policy, 1);
  Backoff b(policy, 2);
  bool diverged = false;
  for (std::size_t attempt = 0; attempt < 20 && !diverged; ++attempt) {
    diverged = a.delay(attempt) != b.delay(attempt);
  }
  EXPECT_TRUE(diverged);
}

TEST(Backoff, DelaysAreNeverNegative) {
  BackoffPolicy policy = no_jitter(0.1, 3.0, 60.0);
  policy.jitter_fraction = 0.5;
  Backoff backoff(policy, 3);
  for (std::size_t attempt = 0; attempt < 50; ++attempt) {
    EXPECT_GE(backoff.delay(attempt), 0.0);
  }
}

TEST(Backoff, RejectsDegeneratePolicy) {
  BackoffPolicy negative_base = no_jitter(-1.0, 2.0, 60.0);
  EXPECT_THROW(Backoff(negative_base, 1), ContractViolation);
  BackoffPolicy shrinking = no_jitter(1.0, 0.5, 60.0);
  EXPECT_THROW(Backoff(shrinking, 1), ContractViolation);
}

}  // namespace
}  // namespace satd
