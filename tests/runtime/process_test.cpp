// Process layer tests: the real ForkExecRunner against /bin/sh children
// (exit codes, signals, env export, log redirection, rusage, pid-reuse-
// proof identity) and the scripted FakeProcessRunner the spooler suite
// builds on.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/clock.h"
#include "runtime/process.h"
#include "runtime/rusage.h"

namespace satd::runtime {
namespace {

namespace fs = std::filesystem;

/// Polls until the child reaps, with a real-time guard rail.
ChildStatus wait_reaped(ProcessRunner& runner, const ProcessId& id,
                        double timeout_seconds = 20.0) {
  Clock& clock = SystemClock::instance();
  const double deadline = clock.now() + timeout_seconds;
  for (;;) {
    const ChildStatus status = runner.poll(id);
    if (!status.running) return status;
    if (clock.now() > deadline) {
      ADD_FAILURE() << "child " << id.pid << " never exited";
      runner.kill(id, SIGKILL);
      return status;
    }
    clock.sleep_for(0.01);
  }
}

class ForkExecRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("satd_process_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  SpawnSpec shell(const std::string& script) {
    SpawnSpec spec;
    spec.argv = {"/bin/sh", "-c", script};
    return spec;
  }

  ForkExecRunner runner_;
  fs::path dir_;
};

TEST_F(ForkExecRunnerTest, ReportsChildExitCode) {
  const ProcessId id = runner_.spawn(shell("exit 7"));
  ASSERT_GT(id.pid, 0);
  EXPECT_FALSE(id.start_id.empty());
  const ChildStatus status = wait_reaped(runner_, id);
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.exit_code, 7);
}

TEST_F(ForkExecRunnerTest, ReportsTerminatingSignal) {
  const ProcessId id = runner_.spawn(shell("kill -9 $$"));
  const ChildStatus status = wait_reaped(runner_, id);
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.term_signal, SIGKILL);
}

TEST_F(ForkExecRunnerTest, ExecFailureSurfacesAsExit127) {
  SpawnSpec spec;
  spec.argv = {(dir_ / "no_such_binary").string()};
  const ProcessId id = runner_.spawn(spec);
  const ChildStatus status = wait_reaped(runner_, id);
  EXPECT_EQ(status.exit_code, 127);
}

TEST_F(ForkExecRunnerTest, ExportsSpecEnvironmentToChild) {
  SpawnSpec spec = shell("exit \"$SATD_TEST_CODE\"");
  spec.env.emplace_back("SATD_TEST_CODE", "9");
  const ChildStatus status = wait_reaped(runner_, runner_.spawn(spec));
  EXPECT_EQ(status.exit_code, 9);
}

TEST_F(ForkExecRunnerTest, RedirectsChildOutputToLogFile) {
  const std::string log = (dir_ / "child.log").string();
  SpawnSpec spec = shell("echo to-stdout; echo to-stderr 1>&2");
  spec.log_path = log;
  wait_reaped(runner_, runner_.spawn(spec));
  std::ifstream in(log);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("to-stdout"), std::string::npos);
  EXPECT_NE(text.find("to-stderr"), std::string::npos);
}

TEST_F(ForkExecRunnerTest, CollectsRusageAtReap) {
  // Burn a little user time so ru_utime is visibly nonzero.
  const ProcessId id = runner_.spawn(
      shell("i=0; while [ $i -lt 200000 ]; do i=$((i+1)); done"));
  const ChildStatus status = wait_reaped(runner_, id);
  EXPECT_EQ(status.exit_code, 0);
  EXPECT_GT(status.usage.wall_seconds, 0.0);
  EXPECT_GT(status.usage.user_seconds + status.usage.sys_seconds, 0.0);
  EXPECT_GT(status.usage.peak_rss_kb, 0);
}

TEST_F(ForkExecRunnerTest, AliveTracksIdentityNotJustPid) {
  const ProcessId id = runner_.spawn(shell("sleep 5"));
  EXPECT_TRUE(runner_.alive(id));
  // Same pid, wrong start time: a recycled pid must not match.
  ProcessId impostor = id;
  impostor.start_id = "0";
  EXPECT_FALSE(runner_.alive(impostor));
  runner_.kill(id, SIGKILL);
  const ChildStatus status = wait_reaped(runner_, id);
  EXPECT_TRUE(status.signaled);
  EXPECT_FALSE(runner_.alive(id));
}

TEST_F(ForkExecRunnerTest, SamplesPeakRssOfLiveChild) {
  const ProcessId id = runner_.spawn(shell("sleep 2"));
  Clock& clock = SystemClock::instance();
  long kb = 0;
  const double deadline = clock.now() + 10.0;
  while (kb <= 0 && clock.now() < deadline) {
    kb = runner_.sample_rss_kb(id);
    if (kb <= 0) clock.sleep_for(0.02);
  }
  EXPECT_GT(kb, 0);
  runner_.kill(id, SIGKILL);
  wait_reaped(runner_, id);
}

TEST(ProcIdentityTest, ReadsOwnStartIdAndPeakRss) {
  const int self = static_cast<int>(::getpid());
  EXPECT_FALSE(read_proc_start_id(self).empty());
  EXPECT_GT(read_proc_peak_rss_kb(self), 0);
  EXPECT_TRUE(process_matches(self, read_proc_start_id(self)));
  EXPECT_FALSE(process_matches(self, "not-a-start-id"));
  EXPECT_FALSE(process_matches(-1, "0"));
}

TEST(FakeProcessRunnerTest, ScriptedChildrenFollowTheClock) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.enqueue("job", {.duration = 2.0, .exit_code = 5, .on_exit = {}});
  SpawnSpec spec;
  spec.argv = {"job"};
  const ProcessId id = runner.spawn(spec);
  EXPECT_TRUE(runner.poll(id).running);
  clock.advance(1.0);
  EXPECT_TRUE(runner.poll(id).running);
  clock.advance(1.0);
  const ChildStatus status = runner.poll(id);
  EXPECT_FALSE(status.running);
  EXPECT_EQ(status.exit_code, 5);
}

TEST(FakeProcessRunnerTest, ScriptsAreConsumedPerKeyInOrder) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  runner.enqueue("job", {.duration = 0.0, .exit_code = 1, .on_exit = {}});
  runner.enqueue("job", {.duration = 0.0, .exit_code = 0, .on_exit = {}});
  SpawnSpec spec;
  spec.argv = {"job"};
  EXPECT_EQ(runner.poll(runner.spawn(spec)).exit_code, 1);
  EXPECT_EQ(runner.poll(runner.spawn(spec)).exit_code, 0);
}

TEST(FakeProcessRunnerTest, SigkillEndsAFakeChild) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  bool exited = false;
  runner.enqueue("job", {.duration = 100.0,
                         .on_exit = [&exited] { exited = true; }});
  SpawnSpec spec;
  spec.argv = {"job"};
  const ProcessId id = runner.spawn(spec);
  clock.advance(1.0);
  runner.kill(id, SIGKILL);
  const ChildStatus status = runner.poll(id);
  EXPECT_FALSE(status.running);
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.term_signal, SIGKILL);
  EXPECT_DOUBLE_EQ(status.usage.wall_seconds, 1.0);
  // A killed child never reached its output-writing hook.
  EXPECT_FALSE(exited);
}

TEST(FakeProcessRunnerTest, OrphansLiveUntilTheirDeathTime) {
  FakeClock clock;
  FakeProcessRunner runner(clock);
  bool died = false;
  runner.add_orphan(900, "orphan-900", 3.0, [&died] { died = true; });
  ProcessId id{900, "orphan-900"};
  EXPECT_TRUE(runner.alive(id));
  EXPECT_TRUE(runner.poll(id).running);
  ProcessId impostor{900, "wrong"};
  EXPECT_FALSE(runner.alive(impostor));
  clock.advance(3.0);
  const ChildStatus status = runner.poll(id);
  EXPECT_FALSE(status.running);
  EXPECT_TRUE(status.signaled);
  EXPECT_TRUE(died);
  EXPECT_FALSE(runner.alive(id));
}

}  // namespace
}  // namespace satd::runtime
