// Spooler chaos tests with REAL child processes (ForkExecRunner +
// SystemClock): kill -9 a child mid-write, kill -9 the spooler itself,
// adopt the surviving orphan, and verify the recovered artifacts are
// bit-identical. These are the end-to-end counterparts of the scripted
// FakeProcessRunner suite in spooler_test.cpp.
#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>

#include "runtime/spooler.h"
#include "runtime/supervisor.h"

namespace satd::runtime {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

const JobOutcome& outcome_of(const MatrixReport& report,
                             const std::string& name) {
  for (const auto& outcome : report.jobs) {
    if (outcome.name == name) return outcome;
  }
  static JobOutcome missing;
  ADD_FAILURE() << "no outcome for job " << name;
  return missing;
}

class SpoolerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_spool_faults();
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("satd_spooler_chaos_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::disarm_spool_faults();
    fs::remove_all(dir_);
  }

  /// Real-process options: short polls, short backoff, real clock.
  Spooler::Options options() {
    Spooler::Options o;
    o.manifest_path = (dir_ / "manifest.bin").string();
    o.fingerprint = "chaos-test";
    o.backoff.base_delay = 0.01;
    o.backoff.multiplier = 2.0;
    o.backoff.max_delay = 0.1;
    o.backoff.jitter_fraction = 0.0;
    o.slots = 2;
    o.poll_interval = 0.01;
    o.rss_sample_interval = 0.05;
    o.kill_grace = 0.2;
    return o;
  }

  Job make_job(const std::string& name, std::vector<std::string> outputs,
               std::size_t max_attempts = 3,
               double deadline = kNoDeadline) {
    Job job;
    job.name = name;
    job.outputs = std::move(outputs);
    job.max_attempts = max_attempts;
    job.deadline_seconds = deadline;
    return job;
  }

  static SpawnSpec shell(const std::string& script) {
    SpawnSpec spec;
    spec.argv = {"/bin/sh", "-c", script};
    return spec;
  }

  fs::path dir_;
};

TEST_F(SpoolerChaosTest, ChildSigkilledMidWriteIsRetriedBitIdentical) {
  const fs::path out = dir_ / "table.csv";
  const std::string payload = "model,clean,pgd\nsimplified,0.871,0.446\n";
  auto factory = [&](const Job&, std::size_t attempt) {
    if (attempt == 1) {
      // Dies by SIGKILL with only a partial temp file on disk — the
      // classic mid-write crash. The declared output never appears.
      return shell("echo partial > " + out.string() + ".tmp; kill -9 $$");
    }
    return shell("printf '" + payload + "' > " + out.string());
  };

  {
    Spooler spooler(options(), factory);
    spooler.add(make_job("table", {out.string()}));
    const MatrixReport report = spooler.run();

    const JobOutcome& outcome = outcome_of(report, "table");
    EXPECT_EQ(outcome.state, JobState::kDone);
    EXPECT_EQ(outcome.attempts, 2u);
    EXPECT_EQ(slurp(out), payload);
  }

  // A rerun over the same journal (the first owner is gone, its lock
  // released) respawns nothing and leaves the artifact bit-for-bit
  // untouched.
  Spooler rerun(options(), factory);
  rerun.add(make_job("table", {out.string()}));
  const MatrixReport resumed = rerun.run();
  EXPECT_TRUE(outcome_of(resumed, "table").resumed);
  EXPECT_EQ(slurp(out), payload);
}

TEST_F(SpoolerChaosTest, SpoolerKillNineResumesAndAdoptsLiveOrphan) {
  const fs::path out = dir_ / "adopted.out";
  auto factory = [&](const Job&, std::size_t) {
    // Outlives the first spooler episode, then writes its output.
    return shell("sleep 1.2; printf done > " + out.string());
  };

  // Episode 1: the spooler "takes a kill -9" right after journaling the
  // child RUNNING. The real child keeps running, now orphaned.
  fault::arm_spool_crash("adoptee", 1);
  {
    Spooler spooler(options(), factory);
    spooler.add(make_job("adoptee", {out.string()}));
    EXPECT_THROW(spooler.run(), SimulatedCrashError);
  }
  fault::disarm_spool_faults();
  EXPECT_FALSE(fs::exists(out));

  // Episode 2: resume finds the RUNNING record, verifies the (pid,
  // start-time) identity against /proc, and adopts the live orphan
  // instead of double-spawning the job.
  Spooler resumed(options(), factory);
  resumed.add(make_job("adoptee", {out.string()}));
  const MatrixReport report = resumed.run();

  const JobOutcome& outcome = outcome_of(report, "adoptee");
  EXPECT_EQ(outcome.state, JobState::kDone);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_NE(outcome.reason.find("adopted"), std::string::npos);
  EXPECT_EQ(slurp(out), "done");
}

TEST_F(SpoolerChaosTest, AdoptedOrphanWithoutOutputsIsRetried) {
  const fs::path out = dir_ / "late.out";
  auto factory = [&](const Job&, std::size_t attempt) {
    if (attempt == 1) {
      // Survives the spooler crash but dies without its outputs.
      return shell("sleep 0.3");
    }
    return shell("printf ok > " + out.string());
  };

  fault::arm_spool_crash("late", 1);
  {
    Spooler spooler(options(), factory);
    spooler.add(make_job("late", {out.string()}));
    EXPECT_THROW(spooler.run(), SimulatedCrashError);
  }
  fault::disarm_spool_faults();

  Spooler resumed(options(), factory);
  resumed.add(make_job("late", {out.string()}));
  const MatrixReport report = resumed.run();

  const JobOutcome& outcome = outcome_of(report, "late");
  EXPECT_EQ(outcome.state, JobState::kDone);
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(slurp(out), "ok");
}

TEST_F(SpoolerChaosTest, WatchdogSigkillsARealRunawayChild) {
  auto factory = [&](const Job&, std::size_t) { return shell("sleep 30"); };

  Spooler::Options o = options();
  o.kill_grace = 0.1;
  Spooler spooler(o, factory);
  spooler.add(make_job("runaway", {(dir_ / "never.out").string()},
                       /*max_attempts=*/1, /*deadline=*/0.2));
  const MatrixReport report = spooler.run();

  const JobOutcome& outcome = outcome_of(report, "runaway");
  EXPECT_EQ(outcome.state, JobState::kDegraded);
  EXPECT_EQ(outcome.kind, FailureKind::kTimeout);
  EXPECT_EQ(outcome.exit_signal, SIGKILL);
  EXPECT_NE(outcome.reason.find("timeout"), std::string::npos);
}

}  // namespace
}  // namespace satd::runtime
