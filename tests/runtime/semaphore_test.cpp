// SlotGate tests: machine-wide concurrency budget semantics, plus the
// kill-9 token-leak repair path (abandon_for_test models a SIGKILLed
// holder: flocks dropped, no sem_post).
//
// Semaphore names are machine-global, so every test salts its name with
// the pid and unlinks in teardown — parallel ctest runs must not share
// budgets.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "runtime/semaphore.h"

namespace satd::runtime {
namespace {

namespace fs = std::filesystem;

class SlotGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    name_ = std::string("satd_gate_test_") +
            std::to_string(::getpid()) + "_" + info->name();
    registry_ = (fs::temp_directory_path() / (name_ + "_reg")).string();
    SlotGate::unlink(name_, registry_);
  }
  void TearDown() override { SlotGate::unlink(name_, registry_); }

  std::string name_;
  std::string registry_;
};

TEST_F(SlotGateTest, AcquireReleaseRoundTripsTheBudget) {
  SlotGate gate(name_, 2, registry_);
  EXPECT_EQ(gate.slots(), 2u);
  EXPECT_EQ(gate.value(), 2);
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_EQ(gate.held(), 1u);
  EXPECT_EQ(gate.value(), 1);
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_EQ(gate.value(), 0);
  EXPECT_FALSE(gate.try_acquire());
  gate.release();
  gate.release();
  EXPECT_EQ(gate.held(), 0u);
  EXPECT_EQ(gate.value(), 2);
}

TEST_F(SlotGateTest, BudgetIsSharedAcrossInstancesOfOneName) {
  SlotGate a(name_, 2, registry_);
  SlotGate b(name_, 2, registry_);
  EXPECT_TRUE(a.try_acquire());
  EXPECT_TRUE(b.try_acquire());
  // Two tenants together exhaust the single machine-wide budget.
  EXPECT_FALSE(a.try_acquire());
  EXPECT_FALSE(b.try_acquire());
  a.release();
  EXPECT_TRUE(b.try_acquire());
}

TEST_F(SlotGateTest, FirstCreatorFixesTheBudget) {
  SlotGate first(name_, 3, registry_);
  // A later tenant asking for a bigger budget adopts the existing one.
  SlotGate second(name_, 10, registry_);
  EXPECT_EQ(second.slots(), 3u);
  EXPECT_EQ(second.value(), 3);
}

TEST_F(SlotGateTest, DestructorReturnsHeldTokens) {
  {
    SlotGate gate(name_, 2, registry_);
    ASSERT_TRUE(gate.try_acquire());
    ASSERT_TRUE(gate.try_acquire());
  }
  SlotGate fresh(name_, 2, registry_);
  EXPECT_EQ(fresh.value(), 2);
}

TEST_F(SlotGateTest, RepairRecoversTokensLeakedByADeadHolder) {
  SlotGate victim(name_, 2, registry_);
  ASSERT_TRUE(victim.try_acquire());
  ASSERT_TRUE(victim.try_acquire());
  // kill -9 the victim: flocks drop, tokens stay un-posted.
  victim.abandon_for_test();
  SlotGate waiter(name_, 2, registry_);
  EXPECT_EQ(waiter.value(), 0);
  EXPECT_FALSE(waiter.try_acquire());
  waiter.repair();
  EXPECT_EQ(waiter.value(), 2);
  EXPECT_TRUE(waiter.try_acquire());
  waiter.release();
}

TEST_F(SlotGateTest, RepairNeverStealsFromLiveHolders) {
  SlotGate holder(name_, 2, registry_);
  ASSERT_TRUE(holder.try_acquire());
  SlotGate waiter(name_, 2, registry_);
  waiter.repair();
  // The live holder's token must not be double-counted back in.
  EXPECT_EQ(waiter.value(), 1);
  ASSERT_TRUE(waiter.try_acquire());
  EXPECT_FALSE(waiter.try_acquire());
  waiter.repair();
  EXPECT_FALSE(waiter.try_acquire());
  waiter.release();
  holder.release();
}

TEST_F(SlotGateTest, RepairIsIdempotentAfterALeak) {
  SlotGate victim(name_, 1, registry_);
  ASSERT_TRUE(victim.try_acquire());
  victim.abandon_for_test();
  SlotGate waiter(name_, 1, registry_);
  waiter.repair();
  waiter.repair();
  waiter.repair();
  // Repeated repairs must not over-post past the budget.
  EXPECT_EQ(waiter.value(), 1);
}

TEST(SlotGateNameTest, SanitizesArbitraryNamesIntoSemNames) {
  const std::string sem = SlotGate::sanitize_name("my farm/gpu#1");
  EXPECT_EQ(sem.front(), '/');
  EXPECT_EQ(sem.find('/', 1), std::string::npos);
  for (char c : sem.substr(1)) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-')
        << "bad char in sem name: " << c;
  }
  EXPECT_EQ(SlotGate::sanitize_name("abc"), SlotGate::sanitize_name("abc"));
}

}  // namespace
}  // namespace satd::runtime
