// Durable job journal: round trips, upserts, fingerprint guard, and
// crash-only recovery from a corrupt file.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "runtime/manifest.h"

namespace satd::runtime {
namespace {

namespace fs = std::filesystem;

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "satd_manifest_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "manifest.bin").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string path_;
};

TEST_F(ManifestTest, RoundTripsRecords) {
  {
    Manifest m(path_, "fp");
    EXPECT_FALSE(m.load());  // nothing on disk yet
    m.record({"train:a", JobState::kDone, 2, "", {"a.model", "a.report"}});
    m.record({"train:b", JobState::kRunning, 1, "", {}});
    m.record({"exp:c", JobState::kDegraded, 3, "failed: boom", {"c.csv"}});
  }
  Manifest m2(path_, "fp");
  ASSERT_TRUE(m2.load());
  ASSERT_EQ(m2.records().size(), 3u);

  const JobRecord* a = m2.find("train:a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->state, JobState::kDone);
  EXPECT_EQ(a->attempts, 2u);
  ASSERT_EQ(a->outputs.size(), 2u);
  EXPECT_EQ(a->outputs[0], "a.model");

  const JobRecord* b = m2.find("train:b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->state, JobState::kRunning);

  const JobRecord* c = m2.find("exp:c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->state, JobState::kDegraded);
  EXPECT_EQ(c->reason, "failed: boom");
}

TEST_F(ManifestTest, RecordUpsertsByName) {
  Manifest m(path_, "fp");
  m.record({"job", JobState::kRunning, 1, "", {}});
  m.record({"job", JobState::kDone, 1, "", {}});
  ASSERT_EQ(m.records().size(), 1u);
  EXPECT_EQ(m.find("job")->state, JobState::kDone);

  Manifest reloaded(path_, "fp");
  ASSERT_TRUE(reloaded.load());
  ASSERT_EQ(reloaded.records().size(), 1u);
  EXPECT_EQ(reloaded.find("job")->state, JobState::kDone);
}

TEST_F(ManifestTest, FingerprintMismatchStartsFresh) {
  {
    Manifest m(path_, "scale=tiny");
    m.record({"job", JobState::kDone, 1, "", {}});
  }
  Manifest other(path_, "scale=paper");
  EXPECT_FALSE(other.load());
  EXPECT_TRUE(other.records().empty());
}

TEST_F(ManifestTest, CorruptJournalIsQuarantined) {
  {
    std::ofstream os(path_, std::ios::binary);
    os << "definitely not a manifest";
  }
  Manifest m(path_, "fp");
  EXPECT_FALSE(m.load());
  EXPECT_FALSE(fs::exists(path_));               // moved aside
  EXPECT_TRUE(fs::exists(path_ + ".corrupt"));   // kept for inspection
  // The quarantined journal never blocks progress: recording works.
  m.record({"job", JobState::kDone, 1, "", {}});
  Manifest reloaded(path_, "fp");
  EXPECT_TRUE(reloaded.load());
}

TEST_F(ManifestTest, TruncatedJournalIsQuarantined) {
  {
    Manifest m(path_, "fp");
    m.record({"job", JobState::kDone, 1, "", {"out.csv"}});
  }
  const auto size = fs::file_size(path_);
  fs::resize_file(path_, size / 2);
  Manifest m(path_, "fp");
  EXPECT_FALSE(m.load());
  EXPECT_TRUE(fs::exists(path_ + ".corrupt"));
}

TEST_F(ManifestTest, MemoryOnlyManifestTouchesNoDisk) {
  Manifest m("", "fp");
  EXPECT_FALSE(m.load());
  m.record({"job", JobState::kDone, 1, "", {}});
  EXPECT_NE(m.find("job"), nullptr);
  EXPECT_TRUE(fs::is_empty(dir_));
}

TEST_F(ManifestTest, CreatesMissingParentDirectories) {
  const std::string nested = (dir_ / "cache" / "deep" / "manifest.bin").string();
  Manifest m(nested, "fp");
  m.record({"job", JobState::kRunning, 1, "", {}});
  EXPECT_TRUE(fs::exists(nested));
}

}  // namespace
}  // namespace satd::runtime
