// Durable job journal: round trips, upserts, fingerprint guard, and
// crash-only recovery from a corrupt file.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/durable_io.h"
#include "runtime/manifest.h"
#include "tensor/serialize.h"

namespace satd::runtime {
namespace {

namespace fs = std::filesystem;

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "satd_manifest_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "manifest.bin").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string path_;
};

TEST_F(ManifestTest, RoundTripsRecords) {
  {
    Manifest m(path_, "fp");
    EXPECT_FALSE(m.load());  // nothing on disk yet
    m.record({"train:a", JobState::kDone, 2, "", {"a.model", "a.report"}});
    m.record({"train:b", JobState::kRunning, 1, "", {}});
    m.record({"exp:c", JobState::kDegraded, 3, "failed: boom", {"c.csv"}});
  }
  Manifest m2(path_, "fp");
  ASSERT_TRUE(m2.load());
  ASSERT_EQ(m2.records().size(), 3u);

  const JobRecord* a = m2.find("train:a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->state, JobState::kDone);
  EXPECT_EQ(a->attempts, 2u);
  ASSERT_EQ(a->outputs.size(), 2u);
  EXPECT_EQ(a->outputs[0], "a.model");

  const JobRecord* b = m2.find("train:b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->state, JobState::kRunning);

  const JobRecord* c = m2.find("exp:c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->state, JobState::kDegraded);
  EXPECT_EQ(c->reason, "failed: boom");
}

TEST_F(ManifestTest, RecordUpsertsByName) {
  Manifest m(path_, "fp");
  m.record({"job", JobState::kRunning, 1, "", {}});
  m.record({"job", JobState::kDone, 1, "", {}});
  ASSERT_EQ(m.records().size(), 1u);
  EXPECT_EQ(m.find("job")->state, JobState::kDone);

  Manifest reloaded(path_, "fp");
  ASSERT_TRUE(reloaded.load());
  ASSERT_EQ(reloaded.records().size(), 1u);
  EXPECT_EQ(reloaded.find("job")->state, JobState::kDone);
}

TEST_F(ManifestTest, FingerprintMismatchStartsFresh) {
  {
    Manifest m(path_, "scale=tiny");
    m.record({"job", JobState::kDone, 1, "", {}});
  }
  Manifest other(path_, "scale=paper");
  EXPECT_FALSE(other.load());
  EXPECT_TRUE(other.records().empty());
}

TEST_F(ManifestTest, CorruptJournalIsQuarantined) {
  {
    std::ofstream os(path_, std::ios::binary);
    os << "definitely not a manifest";
  }
  Manifest m(path_, "fp");
  EXPECT_FALSE(m.load());
  EXPECT_FALSE(fs::exists(path_));               // moved aside
  EXPECT_TRUE(fs::exists(path_ + ".corrupt"));   // kept for inspection
  // The quarantined journal never blocks progress: recording works.
  m.record({"job", JobState::kDone, 1, "", {}});
  Manifest reloaded(path_, "fp");
  EXPECT_TRUE(reloaded.load());
}

TEST_F(ManifestTest, TruncatedJournalIsQuarantined) {
  {
    Manifest m(path_, "fp");
    m.record({"job", JobState::kDone, 1, "", {"out.csv"}});
  }
  const auto size = fs::file_size(path_);
  fs::resize_file(path_, size / 2);
  Manifest m(path_, "fp");
  EXPECT_FALSE(m.load());
  EXPECT_TRUE(fs::exists(path_ + ".corrupt"));
}

TEST_F(ManifestTest, MemoryOnlyManifestTouchesNoDisk) {
  Manifest m("", "fp");
  EXPECT_FALSE(m.load());
  m.record({"job", JobState::kDone, 1, "", {}});
  EXPECT_NE(m.find("job"), nullptr);
  EXPECT_TRUE(fs::is_empty(dir_));
}

TEST_F(ManifestTest, RoundTripsSpoolerAccountingFields) {
  {
    Manifest m(path_, "fp");
    JobRecord rec("train:a", JobState::kDegraded, 3,
                  "timeout: SIGKILLed past the watchdog deadline",
                  {"a.model"});
    rec.kind = FailureKind::kTimeout;
    rec.exit_code = -1;
    rec.exit_signal = 9;
    rec.pid = 4242;
    rec.start_id = "123456789";
    rec.cores = {2, 3};
    rec.usage.wall_seconds = 12.5;
    rec.usage.user_seconds = 11.25;
    rec.usage.sys_seconds = 0.75;
    rec.usage.peak_rss_kb = 81920;
    m.record(rec);
  }
  Manifest m2(path_, "fp");
  ASSERT_TRUE(m2.load());
  const JobRecord* rec = m2.find("train:a");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->kind, FailureKind::kTimeout);
  EXPECT_EQ(rec->exit_code, -1);
  EXPECT_EQ(rec->exit_signal, 9);
  EXPECT_EQ(rec->pid, 4242);
  EXPECT_EQ(rec->start_id, "123456789");
  EXPECT_EQ(rec->cores, (std::vector<int>{2, 3}));
  EXPECT_DOUBLE_EQ(rec->usage.wall_seconds, 12.5);
  EXPECT_DOUBLE_EQ(rec->usage.user_seconds, 11.25);
  EXPECT_DOUBLE_EQ(rec->usage.sys_seconds, 0.75);
  EXPECT_EQ(rec->usage.peak_rss_kb, 81920);
}

TEST_F(ManifestTest, LoadsV1JournalsWithDefaultedAccounting) {
  // Hand-craft a SATDMAN1 payload: journals written before the spooler
  // landed must keep resuming (their extras default).
  durable::write_file_checksummed(path_, [](std::ostream& os) {
    os.write("SATDMAN1", 8);
    write_string(os, "fp");
    write_u64(os, 1);
    write_string(os, "train:old");
    write_u64(os, static_cast<std::uint64_t>(JobState::kDone));
    write_u64(os, 2);  // attempts
    write_string(os, "");
    write_u64(os, 1);  // outputs
    write_string(os, "old.model");
  });
  Manifest m(path_, "fp");
  ASSERT_TRUE(m.load());
  const JobRecord* rec = m.find("train:old");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, JobState::kDone);
  EXPECT_EQ(rec->attempts, 2u);
  ASSERT_EQ(rec->outputs.size(), 1u);
  EXPECT_EQ(rec->kind, FailureKind::kNone);
  EXPECT_EQ(rec->pid, 0);
  EXPECT_TRUE(rec->start_id.empty());
  EXPECT_TRUE(rec->cores.empty());
  EXPECT_EQ(rec->usage.peak_rss_kb, 0);
  // The next flush upgrades the journal to v2 in place.
  m.record({"train:new", JobState::kRunning, 1, "", {}});
  Manifest upgraded(path_, "fp");
  ASSERT_TRUE(upgraded.load());
  EXPECT_EQ(upgraded.records().size(), 2u);
}

TEST_F(ManifestTest, CreatesMissingParentDirectories) {
  const std::string nested = (dir_ / "cache" / "deep" / "manifest.bin").string();
  Manifest m(nested, "fp");
  m.record({"job", JobState::kRunning, 1, "", {}});
  EXPECT_TRUE(fs::exists(nested));
}

}  // namespace
}  // namespace satd::runtime
