#include "common/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/contract.h"

namespace satd {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = w.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(Stopwatch, ResetRestartsFromZero) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.reset();
  EXPECT_LT(w.seconds(), 0.015);
}

TEST(TimingAccumulator, EmptyStatsAreZero) {
  TimingAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.total(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(TimingAccumulator, AggregatesSamples) {
  TimingAccumulator acc;
  acc.add(1.0);
  acc.add(2.0);
  acc.add(3.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.total(), 6.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
  EXPECT_NEAR(acc.stddev(), 0.8165, 1e-3);
}

TEST(TimingAccumulator, SingleSampleHasZeroStddev) {
  TimingAccumulator acc;
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(TimingAccumulator, RejectsNegativeDurations) {
  TimingAccumulator acc;
  EXPECT_THROW(acc.add(-0.1), ContractViolation);
}

TEST(TimingAccumulator, SummaryMentionsCount) {
  TimingAccumulator acc;
  acc.add(1.5);
  acc.add(2.5);
  const std::string s = acc.summary();
  EXPECT_NE(s.find("2 samples"), std::string::npos);
  EXPECT_NE(s.find("mean 2.000s"), std::string::npos);
}

}  // namespace
}  // namespace satd
