#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/contract.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace satd {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.25);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaledByMeanAndStddev) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng(1);
  EXPECT_THROW(rng.bernoulli(-0.1), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.1), ContractViolation);
}

TEST(Rng, SignIsBalanced) {
  Rng rng(29);
  int pos = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) pos += rng.sign() > 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<std::size_t> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleHandlesTinyVectors) {
  Rng rng(1);
  std::vector<std::size_t> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<std::size_t> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one[0], 42u);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(5), b(5);
  Rng fa = a.fork(1);
  Rng fb = b.fork(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, SiblingForksAreIndependent) {
  Rng a(5);
  Rng f1 = a.fork(1);
  Rng f2 = a.fork(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (f1.next_u64() != f2.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ForkDoesNotAliasParent) {
  Rng a(5);
  Rng f = a.fork(0);
  const std::uint64_t parent_next = a.next_u64();
  const std::uint64_t fork_next = f.next_u64();
  EXPECT_NE(parent_next, fork_next);
}

TEST(Splitmix, KnownGoldenValues) {
  // Reference values from the splitmix64 reference implementation.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
}

class RngDistributionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngDistributionTest, UniformChiSquaredAcross10Bins) {
  Rng rng(GetParam());
  const int n = 50000;
  int bins[10] = {};
  for (int i = 0; i < n; ++i) {
    ++bins[static_cast<int>(rng.uniform() * 10.0)];
  }
  // chi^2 with 9 dof: 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expect = n / 10.0;
  for (int b : bins) chi2 += (b - expect) * (b - expect) / expect;
  EXPECT_LT(chi2, 27.9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngDistributionTest,
                         ::testing::Values(1, 2, 42, 1234, 99999));

}  // namespace
}  // namespace satd
