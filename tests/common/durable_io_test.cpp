#include "common/durable_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/crc32.h"

namespace satd::durable {
namespace {

namespace fs = std::filesystem;

class DurableIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "satd_durable_io_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    fault::disarm();
  }
  void TearDown() override {
    fault::disarm();
    fs::remove_all(dir_);
  }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  static std::string slurp(const std::string& p) {
    std::ifstream is(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is), {});
  }

  fs::path dir_;
};

TEST_F(DurableIoTest, Crc32MatchesKnownVectors) {
  // Standard IEEE CRC-32 check values.
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0x00000000u);
  EXPECT_EQ(crc32(std::string("a")), 0xE8B7BE43u);
}

TEST_F(DurableIoTest, Crc32ChainsIncrementally) {
  const std::string s = "the quick brown fox";
  const std::uint32_t whole = crc32(s);
  std::uint32_t chained = crc32(s.data(), 7);
  chained = crc32(s.data() + 7, s.size() - 7, chained);
  EXPECT_EQ(chained, whole);
}

TEST_F(DurableIoTest, ExtractedCrc32KeepsFileFramingByteIdentical) {
  // durable::crc32 now forwards to the standalone common/crc32.h; the
  // stored trailer must still be exactly the pre-extraction sum, so old
  // files verify and new files are bit-identical to old writers.
  const std::string payload = "payload under both implementations";
  EXPECT_EQ(satd::crc32(payload), crc32(payload));
  EXPECT_EQ(satd::crc32("123456789"), 0xCBF43926u);

  const std::string framed = wrap_checksummed(payload);
  const std::uint32_t expect = satd::crc32(payload);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(
                  static_cast<unsigned char>(framed[framed.size() - 4 + i]))
              << (8 * i);
  }
  EXPECT_EQ(stored, expect);
}

TEST_F(DurableIoTest, FrameRoundTrip) {
  const std::string payload("binary\0payload\xff with odd bytes", 30);
  const std::string framed = wrap_checksummed(payload);
  EXPECT_TRUE(is_checksummed(framed));
  EXPECT_FALSE(is_checksummed(payload));
  EXPECT_EQ(unwrap_checksummed(framed, "test"), payload);
}

TEST_F(DurableIoTest, FrameDetectsBitRot) {
  std::string framed = wrap_checksummed(std::string(256, 'x'));
  framed[40] ^= 0x01;  // flip one payload bit
  EXPECT_THROW(unwrap_checksummed(framed, "test"), CorruptFileError);
}

TEST_F(DurableIoTest, FrameDetectsTruncationAtEveryByte) {
  const std::string framed = wrap_checksummed("some payload bytes");
  for (std::size_t cut = 0; cut < framed.size(); ++cut) {
    EXPECT_THROW(unwrap_checksummed(framed.substr(0, cut), "test"),
                 CorruptFileError)
        << "cut at byte " << cut;
  }
}

TEST_F(DurableIoTest, FrameDetectsTrailingGarbage) {
  std::string framed = wrap_checksummed("payload");
  framed += "extra";
  EXPECT_THROW(unwrap_checksummed(framed, "test"), CorruptFileError);
}

TEST_F(DurableIoTest, AtomicWriteCreatesAndReplaces) {
  const std::string p = path("file.bin");
  atomic_write_file(p, "first");
  EXPECT_EQ(slurp(p), "first");
  atomic_write_file(p, "second version");
  EXPECT_EQ(slurp(p), "second version");
  EXPECT_FALSE(fs::exists(p + ".tmp"));  // temp renamed away
}

TEST_F(DurableIoTest, AtomicWriteFsyncsTheParentDirectory) {
  // The rename is only durable once the directory entry itself is on
  // disk; a successful atomic write must therefore fsync the parent.
  fault::reset_dir_fsync_probe();
  EXPECT_EQ(fault::last_dir_fsync(), "");
  const std::string p = path("durable.bin");
  atomic_write_file(p, "bytes");
  EXPECT_EQ(fault::last_dir_fsync(), dir_.string());
}

TEST_F(DurableIoTest, RelativePathFsyncsTheWorkingDirectory) {
  fault::reset_dir_fsync_probe();
  const std::string p = "satd_durable_io_relative.bin";
  atomic_write_file(p, "bytes");
  EXPECT_EQ(fault::last_dir_fsync(), ".");
  fs::remove(p);
}

TEST_F(DurableIoTest, FailedWriteNeverReachesTheDirectoryFsync) {
  fault::reset_dir_fsync_probe();
  const std::string p = path("victim.bin");
  fault::arm_write_failure(2);
  EXPECT_THROW(atomic_write_file(p, "payload"), IoError);
  EXPECT_EQ(fault::last_dir_fsync(), "")
      << "an aborted save must not report directory durability";
}

TEST_F(DurableIoTest, OpenFailureCarriesPathAndErrnoContext) {
  const std::string p = path("no_such_dir") + "/file.bin";
  try {
    atomic_write_file(p, "bytes");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(p), std::string::npos) << msg;
    EXPECT_NE(msg.find("No such file or directory"), std::string::npos)
        << msg;
  }
}

TEST_F(DurableIoTest, InjectedFailureLeavesPreviousFileIntact) {
  const std::string p = path("artifact.bin");
  atomic_write_file(p, wrap_checksummed("good artifact"));
  const std::string replacement = wrap_checksummed("replacement");
  for (std::size_t cut = 0; cut < replacement.size(); cut += 3) {
    fault::arm_write_failure(cut);
    EXPECT_THROW(atomic_write_file(p, replacement), IoError);
    EXPECT_FALSE(fault::armed()) << "trigger must be one-shot";
    EXPECT_EQ(unwrap_checksummed(slurp(p), p), "good artifact")
        << "interrupted save at byte " << cut << " damaged the artifact";
  }
  // The next un-faulted save succeeds over the leftover temp file.
  atomic_write_file(p, replacement);
  EXPECT_EQ(unwrap_checksummed(slurp(p), p), "replacement");
}

TEST_F(DurableIoTest, WriteFileChecksummedRoundTripsThroughRead) {
  const std::string p = path("framed.bin");
  write_file_checksummed(p, [](std::ostream& os) { os << "hello frame"; });
  EXPECT_TRUE(is_checksummed(slurp(p)));
  EXPECT_EQ(read_file_verified(p), "hello frame");
}

TEST_F(DurableIoTest, ReadFileVerifiedPassesLegacyFilesThrough) {
  const std::string p = path("legacy.bin");
  {
    std::ofstream os(p, std::ios::binary);
    os << "unframed legacy bytes";
  }
  EXPECT_EQ(read_file_verified(p), "unframed legacy bytes");
}

TEST_F(DurableIoTest, ReadFileVerifiedThrowsTypedErrors) {
  EXPECT_THROW(read_file_verified(path("absent.bin")), IoError);
  const std::string p = path("rotten.bin");
  std::string framed = wrap_checksummed("payload");
  framed[framed.size() - 1] ^= 0xFF;  // corrupt stored CRC
  atomic_write_file(p, framed);
  EXPECT_THROW(read_file_verified(p), CorruptFileError);
}

TEST_F(DurableIoTest, FaultStreamFailsAtTheLimit) {
  FaultStream fs_ok(100);
  fs_ok << "short write";
  EXPECT_TRUE(fs_ok.good());
  EXPECT_EQ(fs_ok.data(), "short write");

  FaultStream fs_cut(5);
  fs_cut << "abcdefghij";
  EXPECT_FALSE(fs_cut.good()) << "write past the limit must fail";
  EXPECT_EQ(fs_cut.data(), "abcde") << "bytes before the cut are kept";
}

}  // namespace
}  // namespace satd::durable
