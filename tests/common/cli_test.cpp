#include "common/cli.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/contract.h"
#include "common/thread_pool.h"
#include "tensor/kernel/microkernel.h"

namespace satd {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_int("epochs", 30, "training epochs");
  cli.add_double("eps", 0.3, "attack budget");
  cli.add_string("dataset", "digits", "dataset name");
  cli.add_flag("verbose", "chatty output");
  return cli;
}

TEST(Cli, DefaultsWhenNoArgs) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("epochs"), 30);
  EXPECT_DOUBLE_EQ(cli.get_double("eps"), 0.3);
  EXPECT_EQ(cli.get_string("dataset"), "digits");
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--epochs", "10", "--dataset", "fashion"};
  EXPECT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("epochs"), 10);
  EXPECT_EQ(cli.get_string("dataset"), "fashion");
}

TEST(Cli, EqualsSeparatedValues) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--eps=0.2", "--epochs=5"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("eps"), 0.2);
  EXPECT_EQ(cli.get_int("epochs"), 5);
}

TEST(Cli, FlagSetsTrue) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  EXPECT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), CliParser::CliError);
}

TEST(Cli, PositionalArgumentThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(cli.parse(2, argv), CliParser::CliError);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--epochs"};
  EXPECT_THROW(cli.parse(2, argv), CliParser::CliError);
}

TEST(Cli, FlagWithValueThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--verbose=yes"};
  EXPECT_THROW(cli.parse(2, argv), CliParser::CliError);
}

TEST(Cli, NonNumericValueThrowsOnGet) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--epochs", "ten"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.get_int("epochs"), CliParser::CliError);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, UsageMentionsEveryOption) {
  CliParser cli = make_parser();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--epochs"), std::string::npos);
  EXPECT_NE(usage.find("--eps"), std::string::npos);
  EXPECT_NE(usage.find("--dataset"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
}

TEST(Cli, DuplicateRegistrationIsContractViolation) {
  CliParser cli("p", "d");
  cli.add_int("x", 1, "h");
  EXPECT_THROW(cli.add_flag("x", "again"), ContractViolation);
}

TEST(Cli, TypeMismatchOnGetIsContractViolation) {
  CliParser cli = make_parser();
  EXPECT_THROW(cli.get_int("dataset"), ContractViolation);
  EXPECT_THROW(cli.get_flag("epochs"), ContractViolation);
}

TEST(Cli, UnregisteredGetIsContractViolation) {
  CliParser cli = make_parser();
  EXPECT_THROW(cli.get_int("nope"), ContractViolation);
}

// ---- the shared --threads option ----

/// Parses argv through a parser carrying only the threads option.
CliParser threads_parser(std::vector<const char*> argv) {
  CliParser cli("p", "d");
  add_threads_option(cli);
  argv.insert(argv.begin(), "p");
  cli.parse(static_cast<int>(argv.size()), argv.data());
  return cli;
}

TEST(CliThreads, EmptyIsANoOp) {
  const std::size_t before = ThreadPool::global_threads();
  CliParser cli = threads_parser({});
  apply_threads_option(cli);
  EXPECT_EQ(ThreadPool::global_threads(), before);
}

TEST(CliThreads, ValidValueRoutesToGlobalPool) {
  CliParser cli = threads_parser({"--threads", "3"});
  apply_threads_option(cli);
  EXPECT_EQ(ThreadPool::global_threads(), 3u);
  ThreadPool::set_global_threads(0);  // restore the default
}

TEST(CliThreads, RejectsZeroNegativeAndGarbage) {
  const std::size_t before = ThreadPool::global_threads();
  for (const char* bad : {"0", "-2", "abc", "4x", ""}) {
    SCOPED_TRACE(bad);
    CliParser cli = threads_parser({"--threads", bad});
    if (std::string(bad).empty()) {
      // Explicit empty means "option given without a usable value" — the
      // no-op branch, not an error.
      apply_threads_option(cli);
    } else {
      EXPECT_THROW(apply_threads_option(cli), CliParser::CliError);
    }
    EXPECT_EQ(ThreadPool::global_threads(), before);
  }
}

TEST(CliThreads, UsageMentionsThreads) {
  CliParser cli("p", "d");
  add_threads_option(cli);
  EXPECT_NE(cli.usage().find("--threads"), std::string::npos);
}

// ---- the shared --kernel option ----

/// Parses argv through a parser carrying only the kernel option.
CliParser kernel_parser(std::vector<const char*> argv) {
  CliParser cli("p", "d");
  add_kernel_option(cli);
  argv.insert(argv.begin(), "p");
  cli.parse(static_cast<int>(argv.size()), argv.data());
  return cli;
}

TEST(CliKernel, EmptyIsANoOp) {
  const std::string before = kernel::active_kernel().name;
  CliParser cli = kernel_parser({});
  apply_kernel_option(cli);
  EXPECT_EQ(kernel::active_kernel().name, before);
}

TEST(CliKernel, ValidNamePinsTheDispatch) {
  CliParser cli = kernel_parser({"--kernel", "scalar"});
  apply_kernel_option(cli);
  EXPECT_STREQ(kernel::active_kernel().name, "scalar");
  kernel::set_active_kernel("");  // restore env/auto resolution
}

TEST(CliKernel, UnknownNameFallsBackToAutoInsteadOfThrowing) {
  // Unlike --threads, a bad kernel name is hardening territory, not an
  // error: the dispatch layer warns and auto-dispatches so a bench
  // invocation written on an AVX2 box still runs elsewhere.
  CliParser cli = kernel_parser({"--kernel", "not-a-kernel"});
  apply_kernel_option(cli);
  EXPECT_EQ(std::string(kernel::active_kernel().name),
            kernel::auto_kernel_name());
  kernel::set_active_kernel("");
}

TEST(CliKernel, UsageMentionsKernel) {
  CliParser cli("p", "d");
  add_kernel_option(cli);
  EXPECT_NE(cli.usage().find("--kernel"), std::string::npos);
}

}  // namespace
}  // namespace satd
