#include "common/contract.h"

#include <gtest/gtest.h>

namespace satd {
namespace {

TEST(Contract, ExpectPassesOnTrue) {
  EXPECT_NO_THROW(SATD_EXPECT(1 + 1 == 2, "math works"));
}

TEST(Contract, ExpectThrowsOnFalse) {
  EXPECT_THROW(SATD_EXPECT(false, "boom"), ContractViolation);
}

TEST(Contract, EnsureThrowsOnFalse) {
  EXPECT_THROW(SATD_ENSURE(false, "boom"), ContractViolation);
}

TEST(Contract, MessageIncludesExpressionAndLocation) {
  try {
    SATD_EXPECT(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("contract_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contract, EnsureIsLabeledInvariant) {
  try {
    SATD_ENSURE(false, "");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(Contract, ViolationIsALogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(SATD_EXPECT(false, ""), std::logic_error);
}

}  // namespace
}  // namespace satd
