#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/contract.h"

namespace satd {
namespace {

TEST(ThreadPool, SubmitRunsJob) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  // workers=0 is the poolless executor: submit runs on the caller.
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SetGlobalThreadsResizesPool) {
  ThreadPool::set_global_threads(4);
  EXPECT_EQ(ThreadPool::global_threads(), 4u);
  EXPECT_EQ(ThreadPool::global().worker_count(), 3u);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global_threads(), 1u);
  ThreadPool::set_global_threads(0);  // restore SATD_THREADS / hw default
  EXPECT_GE(ThreadPool::global_threads(), 1u);
}

TEST(ThreadPool, NullJobRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ContractViolation);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ParseThreadEnvAcceptsPositiveIntegers) {
  EXPECT_EQ(ThreadPool::parse_thread_env("1"), 1u);
  EXPECT_EQ(ThreadPool::parse_thread_env("8"), 8u);
  EXPECT_EQ(ThreadPool::parse_thread_env("4096"), 4096u);
}

TEST(ThreadPool, ParseThreadEnvRejectsNonPositive) {
  // 0 = "fall back to the hardware default" for every malformed value.
  EXPECT_EQ(ThreadPool::parse_thread_env("0"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_env("-3"), 0u);
}

TEST(ThreadPool, ParseThreadEnvRejectsNonNumeric) {
  EXPECT_EQ(ThreadPool::parse_thread_env(nullptr), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_env(""), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_env("four"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_env("4cores"), 0u);  // trailing garbage
  EXPECT_EQ(ThreadPool::parse_thread_env("3.5"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_env(" 4 "), 0u);
}

TEST(ThreadPool, ParseThreadEnvRejectsAbsurdValues) {
  EXPECT_EQ(ThreadPool::parse_thread_env("4097"), 0u);  // above the cap
  EXPECT_EQ(ThreadPool::parse_thread_env("99999999999999999999"), 0u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleIteration) {
  std::atomic<int> calls{0};
  parallel_for(1, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, GrainCoversEveryIndexExactlyOnce) {
  ThreadPool::set_global_threads(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), 64, [&](std::size_t begin, std::size_t end) {
    EXPECT_TRUE(end - begin >= 64 || end == hits.size());
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  ThreadPool::set_global_threads(0);
}

TEST(ParallelFor, BelowGrainRunsAsSingleInlineChunk) {
  std::atomic<int> calls{0};
  parallel_for(100, 1000, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, NestedCallRunsInlineInsteadOfDeadlocking) {
  ThreadPool::set_global_threads(4);
  std::atomic<int> inner_total{0};
  parallel_for(8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // A nested parallel_for on a worker thread must degrade to inline
      // execution (a single body(0, n) call), not wait on the pool.
      parallel_for(10, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
  ThreadPool::set_global_threads(0);
}

TEST(ParallelFor, SumMatchesSerial) {
  std::vector<long> data(10000);
  std::iota(data.begin(), data.end(), 0L);
  std::atomic<long> total{0};
  parallel_for(data.size(), [&](std::size_t begin, std::size_t end) {
    long local = 0;
    for (std::size_t i = begin; i < end; ++i) local += data[i];
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 10000L * 9999L / 2);
}

}  // namespace
}  // namespace satd
