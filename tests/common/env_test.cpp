// Hardened SATD_SLOTS / SATD_CORES parsing: malformed values must warn
// and fall back (never throw, never propagate garbage), well-formed
// values must round-trip exactly.
#include <gtest/gtest.h>

#include "common/env.h"

namespace satd::env {
namespace {

TEST(ParsePositiveCountTest, AcceptsPlainPositiveIntegers) {
  EXPECT_EQ(parse_positive_count("1", "SATD_SLOTS"), 1u);
  EXPECT_EQ(parse_positive_count("8", "SATD_SLOTS"), 8u);
  EXPECT_EQ(parse_positive_count("128", "SATD_SLOTS"), 128u);
}

TEST(ParsePositiveCountTest, NullAndEmptyFallBack) {
  EXPECT_EQ(parse_positive_count(nullptr, "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("   ", "SATD_SLOTS"), 0u);
}

TEST(ParsePositiveCountTest, RejectsZeroAndNegative) {
  EXPECT_EQ(parse_positive_count("0", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("-2", "SATD_SLOTS"), 0u);
}

TEST(ParsePositiveCountTest, RejectsNonNumericAndTrailingGarbage) {
  EXPECT_EQ(parse_positive_count("many", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("4cores", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("3.5", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("1e3", "SATD_SLOTS"), 0u);
}

TEST(ParsePositiveCountTest, RejectsAbsurdMagnitudes) {
  EXPECT_EQ(parse_positive_count("99999999999999999999", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("1048577", "SATD_SLOTS"), 0u);
}

TEST(ParseCpuListTest, ParsesSingleIdsAndRanges) {
  EXPECT_EQ(parse_cpu_list("0", "SATD_CORES"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpu_list("0,2-4,7", "SATD_CORES"),
            (std::vector<int>{0, 2, 3, 4, 7}));
  EXPECT_EQ(parse_cpu_list("3-3", "SATD_CORES"), (std::vector<int>{3}));
}

TEST(ParseCpuListTest, SortsAndDeduplicates) {
  EXPECT_EQ(parse_cpu_list("7,1,3,1,2-3", "SATD_CORES"),
            (std::vector<int>{1, 2, 3, 7}));
}

TEST(ParseCpuListTest, NullAndEmptyMeanNoBudget) {
  EXPECT_TRUE(parse_cpu_list(nullptr, "SATD_CORES").empty());
  EXPECT_TRUE(parse_cpu_list("", "SATD_CORES").empty());
}

TEST(ParseCpuListTest, AnyMalformedTokenRejectsTheWholeList) {
  // A partial typo must never pin jobs to a half-right core set.
  EXPECT_TRUE(parse_cpu_list("0,banana,2", "SATD_CORES").empty());
  EXPECT_TRUE(parse_cpu_list("0,,2", "SATD_CORES").empty());
  EXPECT_TRUE(parse_cpu_list("0,-1", "SATD_CORES").empty());
  EXPECT_TRUE(parse_cpu_list("4-2", "SATD_CORES").empty());   // reversed
  EXPECT_TRUE(parse_cpu_list("2-", "SATD_CORES").empty());    // unbounded
  EXPECT_TRUE(parse_cpu_list("-3", "SATD_CORES").empty());
  EXPECT_TRUE(parse_cpu_list("0,1x", "SATD_CORES").empty());
}

TEST(ParseCpuListTest, RejectsOutOfRangeIds) {
  EXPECT_TRUE(parse_cpu_list("5000", "SATD_CORES").empty());
  EXPECT_TRUE(
      parse_cpu_list(("0," + std::to_string(kMaxCpuId)).c_str(), "SATD_CORES")
          .empty());
  EXPECT_EQ(parse_cpu_list(std::to_string(kMaxCpuId - 1).c_str(),
                           "SATD_CORES"),
            (std::vector<int>{kMaxCpuId - 1}));
}

TEST(ParseListenAddressTest, AcceptsExplicitAndBareUnixForms) {
  ListenAddress a = parse_listen_address("unix:/tmp/satd.sock", "SATD_LISTEN");
  EXPECT_EQ(a.kind, ListenAddress::Kind::kUnix);
  EXPECT_EQ(a.path, "/tmp/satd.sock");

  a = parse_listen_address("/var/run/satd.sock", "SATD_LISTEN");
  EXPECT_EQ(a.kind, ListenAddress::Kind::kUnix);
  EXPECT_EQ(a.path, "/var/run/satd.sock");
}

TEST(ParseListenAddressTest, AcceptsExplicitAndBareTcpForms) {
  ListenAddress a = parse_listen_address("tcp:127.0.0.1:9000", "SATD_LISTEN");
  EXPECT_EQ(a.kind, ListenAddress::Kind::kTcp);
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 9000);

  a = parse_listen_address("localhost:8080", "--listen");
  EXPECT_EQ(a.kind, ListenAddress::Kind::kTcp);
  EXPECT_EQ(a.host, "localhost");
  EXPECT_EQ(a.port, 8080);
}

TEST(ParseListenAddressTest, PortZeroMeansEphemeral) {
  const ListenAddress a = parse_listen_address("127.0.0.1:0", "SATD_LISTEN");
  EXPECT_EQ(a.kind, ListenAddress::Kind::kTcp);
  EXPECT_EQ(a.port, 0);
  EXPECT_TRUE(a.valid());
}

TEST(ParseListenAddressTest, NullEmptyAndGarbageFallBackToNone) {
  EXPECT_FALSE(parse_listen_address(nullptr, "SATD_LISTEN").valid());
  EXPECT_FALSE(parse_listen_address("", "SATD_LISTEN").valid());
  EXPECT_FALSE(parse_listen_address("   ", "SATD_LISTEN").valid());
  EXPECT_FALSE(parse_listen_address("just-a-host", "SATD_LISTEN").valid());
}

TEST(ParseListenAddressTest, MalformedTcpPortsFallBack) {
  EXPECT_FALSE(parse_listen_address("tcp:host:", "SATD_LISTEN").valid());
  EXPECT_FALSE(parse_listen_address("tcp::9000", "SATD_LISTEN").valid());
  EXPECT_FALSE(parse_listen_address("host:http", "SATD_LISTEN").valid());
  EXPECT_FALSE(parse_listen_address("host:-1", "SATD_LISTEN").valid());
  EXPECT_FALSE(parse_listen_address("host:65536", "SATD_LISTEN").valid());
  EXPECT_FALSE(parse_listen_address("host:90 00", "SATD_LISTEN").valid());
}

TEST(ParseListenAddressTest, MalformedUnixPathsFallBack) {
  EXPECT_FALSE(parse_listen_address("unix:", "SATD_LISTEN").valid());
  // sun_path caps unix socket paths; an over-long path must be rejected
  // at parse time, not truncated at bind time.
  const std::string long_path =
      "unix:/" + std::string(kMaxUnixPath + 1, 'x');
  EXPECT_FALSE(parse_listen_address(long_path.c_str(), "SATD_LISTEN").valid());
  const std::string max_path = "unix:/" + std::string(kMaxUnixPath - 1, 'x');
  EXPECT_TRUE(parse_listen_address(max_path.c_str(), "SATD_LISTEN").valid());
}

TEST(ParseListenAddressTest, HostPortSplitsOnLastColon) {
  // A colon in the host part must not confuse the port split.
  const ListenAddress a = parse_listen_address("tcp:a:b:9000", "SATD_LISTEN");
  EXPECT_EQ(a.kind, ListenAddress::Kind::kTcp);
  EXPECT_EQ(a.host, "a:b");
  EXPECT_EQ(a.port, 9000);
}

}  // namespace
}  // namespace satd::env
