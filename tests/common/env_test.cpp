// Hardened SATD_SLOTS / SATD_CORES parsing: malformed values must warn
// and fall back (never throw, never propagate garbage), well-formed
// values must round-trip exactly.
#include <gtest/gtest.h>

#include "common/env.h"

namespace satd::env {
namespace {

TEST(ParsePositiveCountTest, AcceptsPlainPositiveIntegers) {
  EXPECT_EQ(parse_positive_count("1", "SATD_SLOTS"), 1u);
  EXPECT_EQ(parse_positive_count("8", "SATD_SLOTS"), 8u);
  EXPECT_EQ(parse_positive_count("128", "SATD_SLOTS"), 128u);
}

TEST(ParsePositiveCountTest, NullAndEmptyFallBack) {
  EXPECT_EQ(parse_positive_count(nullptr, "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("   ", "SATD_SLOTS"), 0u);
}

TEST(ParsePositiveCountTest, RejectsZeroAndNegative) {
  EXPECT_EQ(parse_positive_count("0", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("-2", "SATD_SLOTS"), 0u);
}

TEST(ParsePositiveCountTest, RejectsNonNumericAndTrailingGarbage) {
  EXPECT_EQ(parse_positive_count("many", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("4cores", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("3.5", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("1e3", "SATD_SLOTS"), 0u);
}

TEST(ParsePositiveCountTest, RejectsAbsurdMagnitudes) {
  EXPECT_EQ(parse_positive_count("99999999999999999999", "SATD_SLOTS"), 0u);
  EXPECT_EQ(parse_positive_count("1048577", "SATD_SLOTS"), 0u);
}

TEST(ParseCpuListTest, ParsesSingleIdsAndRanges) {
  EXPECT_EQ(parse_cpu_list("0", "SATD_CORES"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpu_list("0,2-4,7", "SATD_CORES"),
            (std::vector<int>{0, 2, 3, 4, 7}));
  EXPECT_EQ(parse_cpu_list("3-3", "SATD_CORES"), (std::vector<int>{3}));
}

TEST(ParseCpuListTest, SortsAndDeduplicates) {
  EXPECT_EQ(parse_cpu_list("7,1,3,1,2-3", "SATD_CORES"),
            (std::vector<int>{1, 2, 3, 7}));
}

TEST(ParseCpuListTest, NullAndEmptyMeanNoBudget) {
  EXPECT_TRUE(parse_cpu_list(nullptr, "SATD_CORES").empty());
  EXPECT_TRUE(parse_cpu_list("", "SATD_CORES").empty());
}

TEST(ParseCpuListTest, AnyMalformedTokenRejectsTheWholeList) {
  // A partial typo must never pin jobs to a half-right core set.
  EXPECT_TRUE(parse_cpu_list("0,banana,2", "SATD_CORES").empty());
  EXPECT_TRUE(parse_cpu_list("0,,2", "SATD_CORES").empty());
  EXPECT_TRUE(parse_cpu_list("0,-1", "SATD_CORES").empty());
  EXPECT_TRUE(parse_cpu_list("4-2", "SATD_CORES").empty());   // reversed
  EXPECT_TRUE(parse_cpu_list("2-", "SATD_CORES").empty());    // unbounded
  EXPECT_TRUE(parse_cpu_list("-3", "SATD_CORES").empty());
  EXPECT_TRUE(parse_cpu_list("0,1x", "SATD_CORES").empty());
}

TEST(ParseCpuListTest, RejectsOutOfRangeIds) {
  EXPECT_TRUE(parse_cpu_list("5000", "SATD_CORES").empty());
  EXPECT_TRUE(
      parse_cpu_list(("0," + std::to_string(kMaxCpuId)).c_str(), "SATD_CORES")
          .empty());
  EXPECT_EQ(parse_cpu_list(std::to_string(kMaxCpuId - 1).c_str(),
                           "SATD_CORES"),
            (std::vector<int>{kMaxCpuId - 1}));
}

}  // namespace
}  // namespace satd::env
