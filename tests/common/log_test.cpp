#include "common/log.h"

#include <gtest/gtest.h>

namespace satd::log {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(level()) {}
  ~LogLevelGuard() { set_level(saved_); }

 private:
  Level saved_;
};

TEST(Log, ParseKnownLevels) {
  EXPECT_EQ(parse_level("trace"), Level::kTrace);
  EXPECT_EQ(parse_level("debug"), Level::kDebug);
  EXPECT_EQ(parse_level("info"), Level::kInfo);
  EXPECT_EQ(parse_level("warn"), Level::kWarn);
  EXPECT_EQ(parse_level("error"), Level::kError);
  EXPECT_EQ(parse_level("off"), Level::kOff);
}

TEST(Log, ParseUnknownFallsBackToInfo) {
  EXPECT_EQ(parse_level("chatty"), Level::kInfo);
  EXPECT_EQ(parse_level(""), Level::kInfo);
}

TEST(Log, SetLevelRoundTrips) {
  LogLevelGuard guard;
  set_level(Level::kError);
  EXPECT_EQ(level(), Level::kError);
  set_level(Level::kDebug);
  EXPECT_EQ(level(), Level::kDebug);
}

TEST(Log, StreamApiDoesNotCrashAtAnyLevel) {
  LogLevelGuard guard;
  set_level(Level::kOff);
  // All suppressed; exercising the stream machinery.
  trace() << "t " << 1;
  debug() << "d " << 2.5;
  info() << "i " << "str";
  warn() << "w";
  error() << "e";
  set_level(Level::kError);
  error() << "emitted to stderr";
  SUCCEED();
}

TEST(Log, LevelOrderingIsMonotone) {
  EXPECT_LT(Level::kTrace, Level::kDebug);
  EXPECT_LT(Level::kDebug, Level::kInfo);
  EXPECT_LT(Level::kInfo, Level::kWarn);
  EXPECT_LT(Level::kWarn, Level::kError);
  EXPECT_LT(Level::kError, Level::kOff);
}

}  // namespace
}  // namespace satd::log
