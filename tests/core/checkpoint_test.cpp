// Checkpoint/resume: an interrupted-and-resumed training run must be
// BIT-IDENTICAL to an uninterrupted one — the strongest property the
// serialization stack (model, optimizer moments, RNG streams,
// method-specific buffers) can satisfy, swept across every training
// method via parameterized gtest.
#include <gtest/gtest.h>

#include <sstream>

#include "core/factory.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "tensor/serialize.h"

namespace satd::core {
namespace {

const data::DatasetPair& digits() {
  static const data::DatasetPair pair = [] {
    data::SyntheticConfig cfg;
    cfg.train_size = 120;
    cfg.test_size = 30;
    cfg.seed = 201;
    return data::make_synthetic_digits(cfg);
  }();
  return pair;
}

TrainConfig config(std::size_t epochs) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.seed = 17;
  cfg.eps = 0.15f;
  cfg.bim_iterations = 3;
  cfg.free_replays = 2;
  cfg.reset_period = 4;  // exercises a Proposed reset across the resume
  return cfg;
}

std::vector<Tensor> params_of(nn::Sequential& model) {
  std::vector<Tensor> params;
  for (Tensor* p : model.parameters()) params.push_back(*p);
  return params;
}

/// Final parameters after an uninterrupted `epochs`-epoch run.
std::vector<Tensor> straight_run(const std::string& method,
                                 std::size_t epochs) {
  Rng rng(3);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  auto trainer = make_trainer(method, model, config(epochs));
  trainer->fit(digits().train);
  return params_of(model);
}

/// Final parameters after running `split` epochs, checkpointing,
/// restoring into a FRESH trainer + model, and finishing the run.
std::vector<Tensor> resumed_run(const std::string& method,
                                std::size_t epochs, std::size_t split) {
  std::stringstream checkpoint;
  {
    Rng rng(3);
    nn::Sequential model = nn::zoo::build("mlp_small", rng);
    auto trainer = make_trainer(method, model, config(epochs));
    trainer->fit(
        digits().train,
        [&](const EpochStats& stats) {
          if (stats.epoch + 1 == split) {
            trainer->save_checkpoint(checkpoint, stats.epoch + 1);
          }
        },
        0);
    // NOTE: the full run continued past the checkpoint; we discard that
    // model and resume from the snapshot below.
  }
  Rng rng(999);  // different init — must be fully overwritten by the load
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  auto trainer = make_trainer(method, model, config(epochs));
  const std::size_t start = trainer->load_checkpoint(checkpoint);
  EXPECT_EQ(start, split);
  trainer->fit(digits().train, {}, start);
  return params_of(model);
}

class CheckpointMethodTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CheckpointMethodTest, ResumeIsBitIdenticalToStraightRun) {
  const std::string method = GetParam();
  const std::size_t epochs = 6;
  const std::size_t split = 3;
  const auto straight = straight_run(method, epochs);
  const auto resumed = resumed_run(method, epochs, split);
  ASSERT_EQ(straight.size(), resumed.size());
  for (std::size_t i = 0; i < straight.size(); ++i) {
    EXPECT_TRUE(straight[i].equals(resumed[i]))
        << method << " parameter " << i << " diverged after resume";
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, CheckpointMethodTest,
                         ::testing::Values("vanilla", "fgsm_adv", "bim_adv",
                                           "atda", "proposed", "pgd_adv",
                                           "free_adv", "alp", "ensemble_adv",
                                           "fgsm_reg"));

// Graceful shutdown meets checkpointing: a stop check firing in the
// MIDDLE of an epoch must roll the trainer back to the last completed
// epoch boundary, and a checkpoint taken there must resume into a run
// bit-identical to an uninterrupted one. This is the contract the
// runtime supervisor's watchdog deadline leans on (a deadline expiring
// mid-epoch costs at most one epoch of work, never correctness).
TEST(Checkpoint, MidEpochStopResumesBitIdentically) {
  const std::string method = "proposed";
  const std::size_t epochs = 6;
  const auto straight = straight_run(method, epochs);

  std::stringstream checkpoint;
  std::size_t completed = 0;
  {
    Rng rng(3);
    nn::Sequential model = nn::zoo::build("mlp_small", rng);
    auto trainer = make_trainer(method, model, config(epochs));
    // 120 examples / batch 32 = 4 batches (and 4 polls) per epoch; poll
    // 14 lands mid-epoch 3, after one batch of it already trained.
    std::size_t polls = 0;
    trainer->set_stop_check([&polls] { return ++polls == 14; });
    const TrainReport report = trainer->fit(digits().train);
    EXPECT_TRUE(report.stopped_early);
    ASSERT_EQ(report.epochs.size(), 3u) << "partial epoch must be discarded";
    completed = report.epochs.size();
    trainer->save_checkpoint(checkpoint, completed);
  }

  Rng rng(999);  // different init — must be fully overwritten by the load
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  auto trainer = make_trainer(method, model, config(epochs));
  const std::size_t start = trainer->load_checkpoint(checkpoint);
  EXPECT_EQ(start, completed);
  const TrainReport resumed_report = trainer->fit(digits().train, {}, start);
  EXPECT_FALSE(resumed_report.stopped_early);
  EXPECT_EQ(resumed_report.epochs.size(), epochs - completed);

  const auto resumed = params_of(model);
  ASSERT_EQ(straight.size(), resumed.size());
  for (std::size_t i = 0; i < straight.size(); ++i) {
    EXPECT_TRUE(straight[i].equals(resumed[i]))
        << "parameter " << i << " diverged after a mid-epoch stop/resume";
  }
}

TEST(Checkpoint, MethodMismatchIsRejected) {
  Rng rng(1);
  nn::Sequential m1 = nn::zoo::build("mlp_small", rng);
  auto vanilla = make_trainer("vanilla", m1, config(4));
  vanilla->fit(digits().train);
  std::stringstream ss;
  vanilla->save_checkpoint(ss, 2);

  nn::Sequential m2 = nn::zoo::build("mlp_small", rng);
  auto proposed = make_trainer("proposed", m2, config(4));
  EXPECT_THROW(proposed->load_checkpoint(ss), SerializeError);
}

TEST(Checkpoint, ArchitectureMismatchIsRejected) {
  Rng rng(1);
  nn::Sequential m1 = nn::zoo::build("mlp_small", rng);
  auto t1 = make_trainer("vanilla", m1, config(4));
  t1->fit(digits().train);
  std::stringstream ss;
  t1->save_checkpoint(ss, 2);

  nn::Sequential m2 = nn::zoo::build("cnn_small", rng);
  auto t2 = make_trainer("vanilla", m2, config(4));
  EXPECT_THROW(t2->load_checkpoint(ss), SerializeError);
}

TEST(Checkpoint, GarbageStreamIsRejected) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  auto trainer = make_trainer("vanilla", m, config(4));
  std::stringstream ss("not a checkpoint at all");
  EXPECT_THROW(trainer->load_checkpoint(ss), SerializeError);
}

TEST(Checkpoint, FileRoundTrip) {
  const std::string path = "/tmp/satd_checkpoint_test.ckpt";
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  auto trainer = make_trainer("proposed", m, config(4));
  trainer->fit(digits().train);
  trainer->save_checkpoint_file(path, 4);

  Rng rng2(2);
  nn::Sequential m2 = nn::zoo::build("mlp_small", rng2);
  auto trainer2 = make_trainer("proposed", m2, config(4));
  EXPECT_EQ(trainer2->load_checkpoint_file(path), 4u);
  Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
  EXPECT_TRUE(m.forward(probe, false).equals(m2.forward(probe, false)));
  std::remove(path.c_str());
}

TEST(Checkpoint, RngStateRoundTrips) {
  Rng a(42);
  a.uniform();
  a.normal();  // leaves a cached second normal
  std::stringstream ss;
  a.save(ss);
  Rng b(0);
  b.load(ss);
  EXPECT_TRUE(a == b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  EXPECT_DOUBLE_EQ(a.normal(), b.normal());  // cached value restored
}

}  // namespace
}  // namespace satd::core
