// Property sweep across EVERY registered training method: invariants
// that must hold regardless of the algorithm (finite losses, finite
// parameters, seed-determinism, report integrity, and no gradient
// residue after fit).
#include <gtest/gtest.h>

#include <cmath>

#include "core/factory.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"

namespace satd::core {
namespace {

const data::DatasetPair& digits() {
  static const data::DatasetPair pair = [] {
    data::SyntheticConfig cfg;
    cfg.train_size = 100;
    cfg.test_size = 40;
    cfg.seed = 314;
    return data::make_synthetic_digits(cfg);
  }();
  return pair;
}

TrainConfig sweep_config() {
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 25;
  cfg.seed = 6;
  cfg.eps = 0.15f;
  cfg.bim_iterations = 3;
  cfg.free_replays = 2;
  cfg.reset_period = 2;
  return cfg;
}

class TrainerPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TrainerPropertyTest, LossesAreFiniteAndReportIsComplete) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  auto trainer = make_trainer(GetParam(), m, sweep_config());
  const TrainReport report = trainer->fit(digits().train);
  ASSERT_EQ(report.epochs.size(), 4u);
  for (const EpochStats& e : report.epochs) {
    EXPECT_TRUE(std::isfinite(e.mean_loss)) << "epoch " << e.epoch;
    EXPECT_GE(e.seconds, 0.0);
  }
  EXPECT_FALSE(report.method.empty());
}

TEST_P(TrainerPropertyTest, ParametersStayFinite) {
  Rng rng(2);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  auto trainer = make_trainer(GetParam(), m, sweep_config());
  trainer->fit(digits().train);
  for (Tensor* p : m.parameters()) {
    for (float v : p->data()) {
      ASSERT_TRUE(std::isfinite(v)) << GetParam();
    }
  }
}

TEST_P(TrainerPropertyTest, GradientsAreZeroAfterFit) {
  Rng rng(3);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  auto trainer = make_trainer(GetParam(), m, sweep_config());
  trainer->fit(digits().train);
  for (Tensor* g : m.gradients()) {
    for (float v : g->data()) {
      ASSERT_EQ(v, 0.0f) << GetParam();
    }
  }
}

TEST_P(TrainerPropertyTest, DeterministicAcrossIdenticalRuns) {
  auto run = [&] {
    Rng rng(4);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    auto trainer = make_trainer(GetParam(), m, sweep_config());
    trainer->fit(digits().train);
    Tensor probe = Tensor::full(Shape{2, 1, 28, 28}, 0.4f);
    return m.forward(probe, false);
  };
  EXPECT_TRUE(run().equals(run())) << GetParam();
}

TEST_P(TrainerPropertyTest, TrainingActuallyChangesTheModel) {
  Rng rng(5);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  std::vector<Tensor> before;
  for (Tensor* p : m.parameters()) before.push_back(*p);
  auto trainer = make_trainer(GetParam(), m, sweep_config());
  trainer->fit(digits().train);
  bool any_changed = false;
  const auto params = m.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!params[i]->equals(before[i])) any_changed = true;
  }
  EXPECT_TRUE(any_changed) << GetParam();
}

TEST_P(TrainerPropertyTest, LearnsBetterThanChance) {
  Rng rng(6);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg = sweep_config();
  cfg.epochs = 8;
  auto trainer = make_trainer(GetParam(), m, cfg);
  trainer->fit(digits().train);
  EXPECT_GT(metrics::evaluate_clean(m, digits().test), 0.3f) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, TrainerPropertyTest,
    ::testing::ValuesIn(known_methods()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace satd::core
