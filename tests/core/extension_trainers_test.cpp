// Tests for the extension trainers (PGD-Adv and Free-Adv) — not part of
// the paper's Table I but part of the library's public surface.
#include <gtest/gtest.h>

#include "attack/bim.h"
#include "common/contract.h"
#include "core/factory.h"
#include "core/free_adv_trainer.h"
#include "core/pgd_adv_trainer.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"
#include "tensor/ops.h"

namespace satd::core {
namespace {

data::DatasetPair tiny_digits() {
  data::SyntheticConfig cfg;
  cfg.train_size = 150;
  cfg.test_size = 50;
  cfg.seed = 77;
  return data::make_synthetic_digits(cfg);
}

TrainConfig tiny_config(std::size_t epochs = 6) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.seed = 8;
  cfg.eps = 0.15f;
  cfg.bim_iterations = 4;
  cfg.free_replays = 3;
  return cfg;
}

TEST(PgdAdvTrainer, NameAndValidation) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  EXPECT_EQ(PgdAdvTrainer(m, tiny_config()).name(), "PGD(4)-Adv");
  TrainConfig bad = tiny_config();
  bad.bim_iterations = 0;
  EXPECT_THROW(PgdAdvTrainer(m, bad), ContractViolation);
}

TEST(PgdAdvTrainer, LearnsCleanData) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  PgdAdvTrainer trainer(m, tiny_config(10));
  trainer.fit(data.train);
  EXPECT_GT(metrics::evaluate_clean(m, data.test), 0.5f);
}

TEST(PgdAdvTrainer, DeterministicGivenSeeds) {
  const auto data = tiny_digits();
  auto run = [&] {
    Rng rng(3);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    PgdAdvTrainer trainer(m, tiny_config(3));
    trainer.fit(data.train);
    Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
    return m.forward(probe, false);
  };
  EXPECT_TRUE(run().equals(run()));
}

TEST(FreeAdvTrainer, NameAndValidation) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  EXPECT_EQ(FreeAdvTrainer(m, tiny_config()).name(), "Free-Adv(m=3)");
  TrainConfig bad = tiny_config();
  bad.free_replays = 0;
  EXPECT_THROW(FreeAdvTrainer(m, bad), ContractViolation);
}

TEST(FreeAdvTrainer, LearnsCleanData) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  FreeAdvTrainer trainer(m, tiny_config(8));
  trainer.fit(data.train);
  EXPECT_GT(metrics::evaluate_clean(m, data.test), 0.5f);
}

TEST(FreeAdvTrainer, DeltaStaysInEpsBox) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg = tiny_config(4);
  FreeAdvTrainer trainer(m, cfg);
  trainer.fit(data.train);
  const Tensor& delta = trainer.delta();
  ASSERT_FALSE(delta.empty());
  EXPECT_LE(ops::max_abs(delta), cfg.eps + 1e-6f);
}

TEST(FreeAdvTrainer, DeltaIsActuallyUsed) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  FreeAdvTrainer trainer(m, tiny_config(4));
  trainer.fit(data.train);
  EXPECT_GT(ops::max_abs(trainer.delta()), 0.01f);
}

TEST(FreeAdvTrainer, MoreRobustThanVanillaAtSameEpochCount) {
  const auto data = tiny_digits();
  TrainConfig cfg = tiny_config(10);
  auto train_with = [&](const std::string& method) {
    Rng rng(4);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    auto trainer = make_trainer(method, m, cfg);
    trainer->fit(data.train);
    attack::Bim bim(cfg.eps, 5);
    return metrics::evaluate_attack(m, data.test, bim);
  };
  EXPECT_GT(train_with("free_adv"), train_with("vanilla"));
}

TEST(Factory, ExtensionsAreRegistered) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  const TrainConfig cfg = tiny_config();
  EXPECT_TRUE(is_known_method("pgd_adv"));
  EXPECT_TRUE(is_known_method("free_adv"));
  EXPECT_EQ(make_trainer("pgd_adv", m, cfg)->name(), "PGD(4)-Adv");
  EXPECT_EQ(make_trainer("free_adv", m, cfg)->name(), "Free-Adv(m=3)");
}

}  // namespace
}  // namespace satd::core
