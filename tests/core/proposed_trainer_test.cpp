#include "core/proposed_trainer.h"

#include <gtest/gtest.h>

#include "common/contract.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"
#include "tensor/ops.h"

namespace satd::core {
namespace {

data::DatasetPair tiny_digits() {
  data::SyntheticConfig cfg;
  cfg.train_size = 120;
  cfg.test_size = 40;
  cfg.seed = 33;
  return data::make_synthetic_digits(cfg);
}

TrainConfig proposed_config(std::size_t epochs, std::size_t reset_period) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.seed = 4;
  cfg.eps = 0.3f;
  cfg.reset_period = reset_period;
  cfg.step_fraction = 0.1f;
  return cfg;
}

TEST(ProposedTrainer, ValidatesItsKnobs) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg = proposed_config(4, 0);
  EXPECT_THROW(ProposedTrainer(m, cfg), ContractViolation);
  cfg = proposed_config(4, 2);
  cfg.step_fraction = 0.0f;
  EXPECT_THROW(ProposedTrainer(m, cfg), ContractViolation);
  cfg.step_fraction = 1.5f;
  EXPECT_THROW(ProposedTrainer(m, cfg), ContractViolation);
}

TEST(ProposedTrainer, BufferStaysInsideEpsBallOfCleanData) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  ProposedTrainer trainer(m, proposed_config(5, 100));  // no reset
  trainer.fit(data.train);
  const Tensor& buffer = trainer.adversarial_buffer();
  ASSERT_EQ(buffer.shape(), data.train.images.shape());
  EXPECT_LE(ops::max_abs_diff(buffer, data.train.images), 0.3f + 1e-5f);
  for (float v : buffer.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(ProposedTrainer, BufferActuallyMovesAwayFromClean) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  ProposedTrainer trainer(m, proposed_config(5, 100));
  trainer.fit(data.train);
  EXPECT_GT(ops::max_abs_diff(trainer.adversarial_buffer(),
                              data.train.images),
            0.05f);
}

TEST(ProposedTrainer, PerturbationAccumulatesAcrossEpochs) {
  // After e epochs without reset, the buffer can be up to e*step from
  // clean (capped at eps); with step = eps/10 = 0.03, 5 epochs should
  // push many pixels beyond a single step of 0.03.
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  ProposedTrainer trainer(m, proposed_config(5, 100));
  trainer.fit(data.train);
  const Tensor& buffer = trainer.adversarial_buffer();
  std::size_t beyond_one_step = 0;
  for (std::size_t i = 0; i < buffer.numel(); ++i) {
    if (std::abs(buffer[i] - data.train.images[i]) > 0.03f + 1e-5f) {
      ++beyond_one_step;
    }
  }
  EXPECT_GT(beyond_one_step, buffer.numel() / 20);
}

TEST(ProposedTrainer, ResetScheduleCountsCorrectly) {
  const auto data = tiny_digits();
  struct Case {
    std::size_t epochs, period, expected_resets;
  };
  // The initial fill counts as reset 1; further resets at epochs that are
  // positive multiples of the period.
  for (const Case c : {Case{4, 2, 2}, Case{6, 2, 3}, Case{5, 100, 1},
                       Case{9, 3, 3}}) {
    Rng rng(1);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    ProposedTrainer trainer(m, proposed_config(c.epochs, c.period));
    trainer.fit(data.train);
    EXPECT_EQ(trainer.reset_count(), c.expected_resets)
        << "epochs=" << c.epochs << " period=" << c.period;
  }
}

TEST(ProposedTrainer, ResetRestartsFromClean) {
  // With reset_period = epochs the final epoch starts from clean, so the
  // buffer ends at most one step away.
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  ProposedTrainer trainer(m, proposed_config(5, 5));
  trainer.fit(data.train);
  // Epoch 5 never happens (epochs are 0..4): last reset at epoch... none
  // within range beyond initial; so use a run of 6 epochs, period 5:
  Rng rng2(1);
  nn::Sequential m2 = nn::zoo::build("mlp_small", rng2);
  ProposedTrainer trainer2(m2, proposed_config(6, 5));
  trainer2.fit(data.train);
  // After the reset at epoch 5, exactly one step was applied.
  EXPECT_LE(ops::max_abs_diff(trainer2.adversarial_buffer(),
                              data.train.images),
            0.3f * 0.1f + 1e-5f);
}

TEST(ProposedTrainer, TrainsAUsableClassifier) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  ProposedTrainer trainer(m, proposed_config(10, 20));
  EXPECT_EQ(trainer.name(), "Proposed");
  trainer.fit(data.train);
  EXPECT_GT(metrics::evaluate_clean(m, data.test), 0.5f);
}

TEST(ProposedTrainer, DeterministicGivenSeeds) {
  const auto data = tiny_digits();
  auto run = [&] {
    Rng rng(9);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    ProposedTrainer trainer(m, proposed_config(3, 2));
    trainer.fit(data.train);
    Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
    return m.forward(probe, false);
  };
  EXPECT_TRUE(run().equals(run()));
}

}  // namespace
}  // namespace satd::core
