#include "core/alp_trainer.h"

#include <gtest/gtest.h>

#include "attack/fgsm.h"
#include "common/contract.h"
#include "common/rng.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"
#include "tensor/ops.h"

namespace satd::core {
namespace {

TEST(LogitPairing, ZeroForIdenticalLogits) {
  Rng rng(1);
  Tensor a(Shape{4, 3});
  for (float& v : a.data()) v = static_cast<float>(rng.uniform(-2, 2));
  const LogitPairResult res = logit_pairing(a, a);
  EXPECT_FLOAT_EQ(res.value, 0.0f);
  EXPECT_FLOAT_EQ(ops::max_abs(res.grad_clean), 0.0f);
  EXPECT_FLOAT_EQ(ops::max_abs(res.grad_adv), 0.0f);
}

TEST(LogitPairing, ValueIsMeanSquaredDifference) {
  Tensor a(Shape{1, 2}, {1.0f, 2.0f});
  Tensor b(Shape{1, 2}, {0.0f, 4.0f});
  const LogitPairResult res = logit_pairing(a, b);
  EXPECT_NEAR(res.value, (1.0f + 4.0f) / 2.0f, 1e-6f);
}

TEST(LogitPairing, GradientsAreOppositeAndMatchFiniteDifference) {
  Rng rng(2);
  Tensor a(Shape{3, 4}), b(Shape{3, 4});
  for (float& v : a.data()) v = static_cast<float>(rng.uniform(-2, 2));
  for (float& v : b.data()) v = static_cast<float>(rng.uniform(-2, 2));
  const LogitPairResult res = logit_pairing(a, b);
  // Anti-symmetry.
  Tensor sum = ops::add(res.grad_clean, res.grad_adv);
  EXPECT_LE(ops::max_abs(sum), 1e-6f);
  // Finite differences on the clean side.
  const float h = 1e-3f;
  for (std::size_t i = 0; i < a.numel(); i += 2) {
    Tensor probe = a;
    probe[i] += h;
    const float up = logit_pairing(probe, b).value;
    probe[i] -= 2 * h;
    const float down = logit_pairing(probe, b).value;
    EXPECT_NEAR(res.grad_clean[i], (up - down) / (2 * h), 2e-3f) << i;
  }
}

TEST(LogitPairing, RejectsMismatchedShapes) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{3, 2});
  EXPECT_THROW(logit_pairing(a, b), ContractViolation);
}

TEST(AlpTrainer, TrainsAndRegisteredInFactory) {
  data::SyntheticConfig dc;
  dc.train_size = 150;
  dc.test_size = 50;
  dc.seed = 91;
  const auto data = data::make_synthetic_digits(dc);
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.eps = 0.15f;
  cfg.alp_weight = 0.5f;
  EXPECT_TRUE(is_known_method("alp"));
  auto trainer = make_trainer("alp", m, cfg);
  EXPECT_EQ(trainer->name(), "ALP");
  trainer->fit(data.train);
  EXPECT_GT(metrics::evaluate_clean(m, data.test), 0.5f);
}

TEST(AlpTrainer, PairingTermShrinksLogitGap) {
  // Train two models, one with the pairing term and one without; the
  // ALP model's clean/adversarial logit distance should be smaller.
  data::SyntheticConfig dc;
  dc.train_size = 200;
  dc.test_size = 60;
  dc.seed = 92;
  const auto data = data::make_synthetic_digits(dc);
  auto logit_gap = [&](float alp_weight) {
    Rng rng(2);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.eps = 0.15f;
    cfg.alp_weight = alp_weight;
    AlpTrainer trainer(m, cfg);
    trainer.fit(data.train);
    attack::Fgsm fgsm(cfg.eps);
    const Tensor adv =
        fgsm.perturb(m, data.test.images, data.test.labels);
    const Tensor lc = m.forward(data.test.images, false);
    const Tensor la = m.forward(adv, false);
    return logit_pairing(lc, la).value;
  };
  EXPECT_LT(logit_gap(1.0f), logit_gap(0.0f));
}

TEST(AlpTrainer, RejectsNegativeWeight) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg;
  cfg.alp_weight = -0.5f;
  EXPECT_THROW(AlpTrainer(m, cfg), ContractViolation);
}

}  // namespace
}  // namespace satd::core
