#include "core/trainer.h"

#include <gtest/gtest.h>

#include "common/contract.h"
#include "core/fgsm_adv_trainer.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"

namespace satd::core {
namespace {

data::DatasetPair tiny_digits() {
  data::SyntheticConfig cfg;
  cfg.train_size = 150;
  cfg.test_size = 50;
  cfg.seed = 21;
  return data::make_synthetic_digits(cfg);
}

TrainConfig tiny_config(std::size_t epochs = 5) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.seed = 3;
  cfg.eps = 0.2f;
  return cfg;
}

TEST(Trainer, ConfigValidation) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg = tiny_config();
  cfg.epochs = 0;
  EXPECT_THROW(VanillaTrainer(m, cfg), ContractViolation);
  cfg = tiny_config();
  cfg.batch_size = 0;
  EXPECT_THROW(VanillaTrainer(m, cfg), ContractViolation);
  cfg = tiny_config();
  cfg.adv_mix = 1.5f;
  EXPECT_THROW(VanillaTrainer(m, cfg), ContractViolation);
  cfg = tiny_config();
  cfg.eps = -0.1f;
  EXPECT_THROW(VanillaTrainer(m, cfg), ContractViolation);
}

TEST(Trainer, ReportHasOneEntryPerEpoch) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  VanillaTrainer trainer(m, tiny_config(4));
  const TrainReport report = trainer.fit(data.train);
  EXPECT_EQ(report.method, "Vanilla");
  ASSERT_EQ(report.epochs.size(), 4u);
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_EQ(report.epochs[e].epoch, e);
    EXPECT_GT(report.epochs[e].seconds, 0.0);
  }
  EXPECT_GT(report.mean_epoch_seconds(), 0.0);
  EXPECT_NEAR(report.total_seconds(),
              report.mean_epoch_seconds() * 4.0, 1e-9);
}

TEST(Trainer, VanillaLearnsTheTinyDataset) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  VanillaTrainer trainer(m, tiny_config(10));
  const TrainReport report = trainer.fit(data.train);
  // Loss decreases substantially from the first epoch to the last.
  EXPECT_LT(report.final_loss(), report.epochs.front().mean_loss * 0.5f);
  // And test accuracy is far above the 10% chance level.
  EXPECT_GT(metrics::evaluate_clean(m, data.test), 0.6f);
}

TEST(Trainer, EpochCallbackFires) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  VanillaTrainer trainer(m, tiny_config(3));
  std::vector<std::size_t> seen;
  trainer.fit(data.train,
              [&](const EpochStats& s) { seen.push_back(s.epoch); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Trainer, DeterministicGivenSeeds) {
  const auto data = tiny_digits();
  auto run = [&] {
    Rng rng(5);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    VanillaTrainer trainer(m, tiny_config(3));
    trainer.fit(data.train);
    Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
    return m.forward(probe, false);
  };
  EXPECT_TRUE(run().equals(run()));
}

TEST(Trainer, FgsmAdvAlsoLearnsCleanData) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  FgsmAdvTrainer trainer(m, tiny_config(10));
  EXPECT_EQ(trainer.name(), "FGSM-Adv");
  trainer.fit(data.train);
  EXPECT_GT(metrics::evaluate_clean(m, data.test), 0.55f);
}

TEST(Trainer, EmptyDatasetRejected) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  VanillaTrainer trainer(m, tiny_config());
  data::Dataset empty;
  empty.images = Tensor(Shape{0, 1, 28, 28});
  empty.num_classes = 10;
  EXPECT_THROW(trainer.fit(empty), ContractViolation);
}

TEST(TrainReport, EmptyReportIsWellBehaved) {
  TrainReport r;
  EXPECT_DOUBLE_EQ(r.mean_epoch_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(r.total_seconds(), 0.0);
  EXPECT_FLOAT_EQ(r.final_loss(), 0.0f);
}

}  // namespace
}  // namespace satd::core
