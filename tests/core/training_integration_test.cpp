// End-to-end checks of the paper's qualitative claims at unit-test scale:
// adversarially trained models resist BIM where vanilla collapses, and
// the per-epoch cost ordering matches the method structure.
#include <gtest/gtest.h>

#include "attack/bim.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"

namespace satd::core {
namespace {

struct Trained {
  nn::Sequential model;
  TrainReport report;
};

const data::DatasetPair& shared_digits() {
  static const data::DatasetPair pair = [] {
    data::SyntheticConfig cfg;
    cfg.train_size = 240;
    cfg.test_size = 80;
    cfg.seed = 55;
    return data::make_synthetic_digits(cfg);
  }();
  return pair;
}

Trained train(const std::string& method, std::size_t bim_iters = 5) {
  Rng rng(10);
  Trained out{nn::zoo::build("mlp_small", rng), {}};
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 32;
  cfg.seed = 20;
  cfg.eps = 0.15f;
  cfg.bim_iterations = bim_iters;
  cfg.reset_period = 6;
  auto trainer = make_trainer(method, out.model, cfg);
  out.report = trainer->fit(shared_digits().train);
  return out;
}

// Trained models are reused across assertions; training happens once.
Trained& vanilla() {
  static Trained t = train("vanilla");
  return t;
}
Trained& fgsm_adv() {
  static Trained t = train("fgsm_adv");
  return t;
}
Trained& bim_adv() {
  static Trained t = train("bim_adv");
  return t;
}
Trained& atda() {
  static Trained t = train("atda");
  return t;
}
Trained& proposed() {
  static Trained t = train("proposed");
  return t;
}

float bim_accuracy(nn::Sequential& model, std::size_t iters = 10) {
  attack::Bim bim(0.15f, iters);
  return metrics::evaluate_attack(model, shared_digits().test, bim);
}

TEST(TrainingIntegration, EveryMethodLearnsCleanData) {
  EXPECT_GT(metrics::evaluate_clean(vanilla().model, shared_digits().test),
            0.6f);
  EXPECT_GT(metrics::evaluate_clean(fgsm_adv().model, shared_digits().test),
            0.55f);
  EXPECT_GT(metrics::evaluate_clean(bim_adv().model, shared_digits().test),
            0.5f);
  EXPECT_GT(metrics::evaluate_clean(atda().model, shared_digits().test),
            0.5f);
  EXPECT_GT(metrics::evaluate_clean(proposed().model, shared_digits().test),
            0.5f);
}

TEST(TrainingIntegration, VanillaCollapsesUnderBim) {
  const float clean =
      metrics::evaluate_clean(vanilla().model, shared_digits().test);
  const float robust = bim_accuracy(vanilla().model);
  EXPECT_LT(robust, clean * 0.5f);
}

TEST(TrainingIntegration, AdversarialTrainingBeatsVanillaUnderBim) {
  const float vanilla_robust = bim_accuracy(vanilla().model);
  EXPECT_GT(bim_accuracy(bim_adv().model), vanilla_robust);
  EXPECT_GT(bim_accuracy(proposed().model), vanilla_robust);
}

TEST(TrainingIntegration, ProposedIsCompetitiveWithIterAdv) {
  // Table I's shape: Proposed within a reasonable band of BIM-Adv.
  const float iter_adv = bim_accuracy(bim_adv().model);
  const float ours = bim_accuracy(proposed().model);
  EXPECT_GT(ours, iter_adv * 0.6f);
}

TEST(TrainingIntegration, PerEpochCostOrdering) {
  // Structural cost: FGSM-Adv does 1 extra grad pass per batch, Proposed
  // ~1 plus buffer bookkeeping, BIM(5)-Adv does 5. Wall-clock ordering
  // must reflect that with a wide margin.
  const double t_fgsm = fgsm_adv().report.mean_epoch_seconds();
  const double t_proposed = proposed().report.mean_epoch_seconds();
  const double t_bim = bim_adv().report.mean_epoch_seconds();
  EXPECT_LT(t_fgsm, t_bim);
  EXPECT_LT(t_proposed, t_bim);
}

TEST(TrainingIntegration, AtdaResistsBetterThanVanilla) {
  EXPECT_GT(bim_accuracy(atda().model), bim_accuracy(vanilla().model));
}

TEST(TrainingIntegration, ReportsCarryMethodNames) {
  EXPECT_EQ(vanilla().report.method, "Vanilla");
  EXPECT_EQ(bim_adv().report.method, "BIM(5)-Adv");
  EXPECT_EQ(proposed().report.method, "Proposed");
  EXPECT_EQ(atda().report.method, "ATDA");
}

}  // namespace
}  // namespace satd::core
