#include "core/factory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "nn/zoo.h"

namespace satd::core {
namespace {

TEST(Factory, BuildsEveryKnownMethod) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg;
  for (const auto& method : known_methods()) {
    auto trainer = make_trainer(method, m, cfg);
    ASSERT_NE(trainer, nullptr) << method;
    EXPECT_FALSE(trainer->name().empty());
    EXPECT_TRUE(is_known_method(method));
  }
}

TEST(Factory, MethodNamesMatchPaperRows) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg;
  cfg.bim_iterations = 10;
  EXPECT_EQ(make_trainer("vanilla", m, cfg)->name(), "Vanilla");
  EXPECT_EQ(make_trainer("fgsm_adv", m, cfg)->name(), "FGSM-Adv");
  EXPECT_EQ(make_trainer("bim_adv", m, cfg)->name(), "BIM(10)-Adv");
  cfg.bim_iterations = 30;
  EXPECT_EQ(make_trainer("bim_adv", m, cfg)->name(), "BIM(30)-Adv");
  EXPECT_EQ(make_trainer("atda", m, cfg)->name(), "ATDA");
  EXPECT_EQ(make_trainer("proposed", m, cfg)->name(), "Proposed");
}

TEST(Factory, UnknownMethodThrowsInvalidArgumentListingKnownMethods) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg;
  EXPECT_FALSE(is_known_method("trades"));
  try {
    make_trainer("trades", m, cfg);
    FAIL() << "make_trainer accepted an unknown method";
  } catch (const std::invalid_argument& e) {
    // The message must name the offender and list every valid choice, so
    // a typo'd bench flag is self-diagnosing.
    const std::string what = e.what();
    EXPECT_NE(what.find("trades"), std::string::npos) << what;
    for (const auto& method : known_methods()) {
      EXPECT_NE(what.find(method), std::string::npos)
          << "missing \"" << method << "\" in: " << what;
    }
  }
}

TEST(Factory, ExtensionMethodNamesAndKnownList) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg;
  EXPECT_EQ(make_trainer("ensemble_adv", m, cfg)->name(), "Ensemble-Adv");
  EXPECT_EQ(make_trainer("fgsm_reg", m, cfg)->name(), "FGSM-Reg");
  const auto methods = known_methods();
  EXPECT_NE(std::find(methods.begin(), methods.end(), "ensemble_adv"),
            methods.end());
  EXPECT_NE(std::find(methods.begin(), methods.end(), "fgsm_reg"),
            methods.end());
}

TEST(Factory, ConfigIsForwarded) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg;
  cfg.eps = 0.123f;
  auto trainer = make_trainer("proposed", m, cfg);
  EXPECT_FLOAT_EQ(trainer->config().eps, 0.123f);
}

}  // namespace
}  // namespace satd::core
