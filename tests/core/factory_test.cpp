#include "core/factory.h"

#include <gtest/gtest.h>

#include "common/contract.h"
#include "nn/zoo.h"

namespace satd::core {
namespace {

TEST(Factory, BuildsEveryKnownMethod) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg;
  for (const auto& method : known_methods()) {
    auto trainer = make_trainer(method, m, cfg);
    ASSERT_NE(trainer, nullptr) << method;
    EXPECT_FALSE(trainer->name().empty());
    EXPECT_TRUE(is_known_method(method));
  }
}

TEST(Factory, MethodNamesMatchPaperRows) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg;
  cfg.bim_iterations = 10;
  EXPECT_EQ(make_trainer("vanilla", m, cfg)->name(), "Vanilla");
  EXPECT_EQ(make_trainer("fgsm_adv", m, cfg)->name(), "FGSM-Adv");
  EXPECT_EQ(make_trainer("bim_adv", m, cfg)->name(), "BIM(10)-Adv");
  cfg.bim_iterations = 30;
  EXPECT_EQ(make_trainer("bim_adv", m, cfg)->name(), "BIM(30)-Adv");
  EXPECT_EQ(make_trainer("atda", m, cfg)->name(), "ATDA");
  EXPECT_EQ(make_trainer("proposed", m, cfg)->name(), "Proposed");
}

TEST(Factory, UnknownMethodThrows) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg;
  EXPECT_FALSE(is_known_method("trades"));
  EXPECT_THROW(make_trainer("trades", m, cfg), ContractViolation);
}

TEST(Factory, ConfigIsForwarded) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg;
  cfg.eps = 0.123f;
  auto trainer = make_trainer("proposed", m, cfg);
  EXPECT_FLOAT_EQ(trainer->config().eps, 0.123f);
}

}  // namespace
}  // namespace satd::core
