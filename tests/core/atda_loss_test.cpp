#include "core/atda_loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace satd::core {
namespace {

Tensor random_logits(std::size_t n, std::size_t d, Rng& rng) {
  Tensor t(Shape{n, d});
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return t;
}

AtdaLossWeights default_weights() {
  AtdaLossWeights w;
  w.lambda_coral = 0.4f;
  w.lambda_mmd = 0.6f;
  w.lambda_margin = 0.3f;
  w.margin = 1.5f;
  return w;
}

TEST(AtdaLoss, ZeroForIdenticalDomainsWithInactiveMargin) {
  Rng rng(1);
  const Tensor logits = random_logits(6, 4, rng);
  std::vector<std::size_t> labels{0, 1, 2, 3, 0, 1};
  // Push centers so far away that d_y - d_other + margin < 0 everywhere
  // is impossible to guarantee; instead use zero margin weight.
  AtdaLossWeights w = default_weights();
  w.lambda_margin = 0.0f;
  Tensor centers(Shape{4, 4});
  const AtdaLossResult res =
      atda_domain_loss(logits, logits, labels, centers, w);
  EXPECT_NEAR(res.coral, 0.0f, 1e-6f);
  EXPECT_NEAR(res.mmd, 0.0f, 1e-6f);
  EXPECT_NEAR(res.total, 0.0f, 1e-6f);
}

TEST(AtdaLoss, DetectsMeanShiftViaMmd) {
  Rng rng(2);
  const Tensor clean = random_logits(8, 4, rng);
  Tensor adv = clean;
  for (float& v : adv.data()) v += 1.0f;
  AtdaLossWeights w = default_weights();
  w.lambda_margin = 0.0f;
  Tensor centers(Shape{4, 4});
  std::vector<std::size_t> labels(8, 0);
  const AtdaLossResult res = atda_domain_loss(clean, adv, labels, centers, w);
  EXPECT_NEAR(res.mmd, 1.0f, 1e-5f);
  EXPECT_NEAR(res.coral, 0.0f, 1e-5f);  // pure translation: CORAL blind
}

TEST(AtdaLoss, DetectsScaleChangeViaCoral) {
  Rng rng(3);
  const Tensor clean = random_logits(10, 4, rng);
  Tensor adv = ops::scale(clean, 2.0f);
  AtdaLossWeights w = default_weights();
  w.lambda_margin = 0.0f;
  w.lambda_mmd = 0.0f;
  Tensor centers(Shape{4, 4});
  std::vector<std::size_t> labels(10, 0);
  const AtdaLossResult res = atda_domain_loss(clean, adv, labels, centers, w);
  EXPECT_GT(res.coral, 0.1f);
}

TEST(AtdaLoss, MarginPenalizesLogitsNearWrongCenters) {
  // One sample sitting exactly on the wrong class's center.
  Tensor centers(Shape{2, 2}, {0, 0, 5, 5});
  Tensor clean(Shape{2, 2}, {5, 5, 0.1f, 0.1f});  // row 0 labeled 0 but at c1
  Tensor adv = clean;
  std::vector<std::size_t> labels{0, 0};
  AtdaLossWeights w;
  w.lambda_coral = 0.0f;
  w.lambda_mmd = 0.0f;
  w.lambda_margin = 1.0f;
  w.margin = 1.0f;
  const AtdaLossResult res = atda_domain_loss(clean, adv, labels, centers, w);
  EXPECT_GT(res.margin, 0.0f);
  // Row 0 sits above its true center c0 in both coordinates, so the loss
  // gradient is positive there — gradient DESCENT then moves the logit
  // down towards c0 and away from the wrong center c1.
  EXPECT_GT(res.grad_clean.at(0, 0), 0.0f);
}

TEST(AtdaLoss, GradientsMatchFiniteDifferences) {
  Rng rng(7);
  const std::size_t n = 6, d = 5;
  Tensor clean = random_logits(n, d, rng);
  Tensor adv = random_logits(n, d, rng);
  Tensor centers = random_logits(d, d, rng);  // 5 classes in 5-dim space
  std::vector<std::size_t> labels{0, 1, 2, 3, 4, 0};
  const AtdaLossWeights w = default_weights();

  const AtdaLossResult res = atda_domain_loss(clean, adv, labels, centers, w);
  const float h = 1e-3f;
  auto value = [&](const Tensor& c, const Tensor& a) {
    return atda_domain_loss(c, a, labels, centers, w).total;
  };
  // Check a spread of coordinates on both sides.
  for (std::size_t i = 0; i < clean.numel(); i += 3) {
    Tensor probe = clean;
    probe[i] += h;
    const float up = value(probe, adv);
    probe[i] -= 2 * h;
    const float down = value(probe, adv);
    const float numeric = (up - down) / (2 * h);
    EXPECT_NEAR(res.grad_clean[i], numeric,
                5e-2f * std::max(1.0f, std::fabs(res.grad_clean[i])))
        << "clean coordinate " << i;
  }
  for (std::size_t i = 0; i < adv.numel(); i += 3) {
    Tensor probe = adv;
    probe[i] += h;
    const float up = value(clean, probe);
    probe[i] -= 2 * h;
    const float down = value(clean, probe);
    const float numeric = (up - down) / (2 * h);
    EXPECT_NEAR(res.grad_adv[i], numeric,
                5e-2f * std::max(1.0f, std::fabs(res.grad_adv[i])))
        << "adv coordinate " << i;
  }
}

TEST(AtdaLoss, TotalIsWeightedSum) {
  Rng rng(9);
  const Tensor clean = random_logits(6, 3, rng);
  const Tensor adv = random_logits(6, 3, rng);
  Tensor centers = random_logits(3, 3, rng);
  std::vector<std::size_t> labels{0, 1, 2, 0, 1, 2};
  const AtdaLossWeights w = default_weights();
  const AtdaLossResult res = atda_domain_loss(clean, adv, labels, centers, w);
  EXPECT_NEAR(res.total,
              w.lambda_coral * res.coral + w.lambda_mmd * res.mmd +
                  w.lambda_margin * res.margin,
              1e-5f);
}

TEST(AtdaLoss, RejectsMalformedInputs) {
  Rng rng(1);
  Tensor a = random_logits(4, 3, rng);
  Tensor b = random_logits(4, 4, rng);
  Tensor centers(Shape{3, 3});
  std::vector<std::size_t> labels{0, 1, 2, 0};
  const AtdaLossWeights w;
  EXPECT_THROW(atda_domain_loss(a, b, labels, centers, w), ContractViolation);
  Tensor one = random_logits(1, 3, rng);
  std::vector<std::size_t> one_label{0};
  EXPECT_THROW(atda_domain_loss(one, one, one_label, centers, w),
               ContractViolation);
  std::vector<std::size_t> short_labels{0};
  EXPECT_THROW(atda_domain_loss(a, a, short_labels, centers, w),
               ContractViolation);
}

TEST(UpdateClassCenters, MovesTowardsBatchMean) {
  Tensor centers(Shape{2, 2});  // both at origin
  Tensor logits(Shape{2, 2}, {1, 1, 3, 3});
  std::vector<std::size_t> labels{0, 0};
  update_class_centers(centers, logits, labels, 0.5f);
  // Mean of class 0 is (2,2); EMA to half-way.
  EXPECT_FLOAT_EQ(centers.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(centers.at(0, 1), 1.0f);
  // Class 1 untouched (absent from batch).
  EXPECT_FLOAT_EQ(centers.at(1, 0), 0.0f);
}

TEST(UpdateClassCenters, AlphaOneJumpsToMean) {
  Tensor centers(Shape{1, 2}, {5, 5});
  Tensor logits(Shape{2, 2}, {1, 2, 3, 4});
  std::vector<std::size_t> labels{0, 0};
  update_class_centers(centers, logits, labels, 1.0f);
  EXPECT_FLOAT_EQ(centers.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(centers.at(0, 1), 3.0f);
}

TEST(UpdateClassCenters, ValidatesInputs) {
  Tensor centers(Shape{2, 2});
  Tensor logits(Shape{2, 2});
  std::vector<std::size_t> labels{0, 1};
  EXPECT_THROW(update_class_centers(centers, logits, labels, 0.0f),
               ContractViolation);
  std::vector<std::size_t> bad{0, 2};
  EXPECT_THROW(update_class_centers(centers, logits, bad, 0.5f),
               ContractViolation);
}

}  // namespace
}  // namespace satd::core
