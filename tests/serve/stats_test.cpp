// Percentile fidelity and jitter aggregation: exact order statistics at
// small N (every committed bench point is 256 samples), deterministic
// histogram fallback past the cap, and the streaming
// count/sum/sum-of-squares mean/stddev.
#include "serve/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace satd::serve {
namespace {

TEST(StreamingMoments, MeanAndStddevAreExact) {
  StreamingMoments m;
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.stddev(), 0.0);
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.stddev(), 2.0);  // the textbook population example
}

TEST(StreamingMoments, MergeMatchesPooledStream) {
  StreamingMoments a, b, pooled;
  for (double x : {1.0, 2.0, 3.0}) { a.add(x); pooled.add(x); }
  for (double x : {10.0, 20.0}) { b.add(x); pooled.add(x); }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_DOUBLE_EQ(a.mean(), pooled.mean());
  EXPECT_DOUBLE_EQ(a.stddev(), pooled.stddev());
}

TEST(LatencyHistogram, SmallSamplePercentilesAreExactOrderStatistics) {
  // 256 distinct latencies 1..256 ms: nearest-rank percentiles are exact
  // samples, so p95 and p99 MUST differ (the log-bucket baseline put
  // both in one bucket at this N).
  LatencyHistogram h;
  for (std::size_t i = 1; i <= 256; ++i) {
    h.record(static_cast<double>(i) * 1e-3);
  }
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 0.128);  // ceil(0.5*256) = 128th
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 0.244);  // ceil(0.95*256) = 244th
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.254);  // ceil(0.99*256) = 254th
  EXPECT_NE(h.percentile(0.95), h.percentile(0.99));
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.256);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.001);
}

TEST(LatencyHistogram, PercentilesAreOrderInvariant) {
  std::vector<double> samples;
  for (std::size_t i = 1; i <= 100; ++i) {
    samples.push_back(static_cast<double>((i * 37) % 100 + 1) * 1e-4);
  }
  LatencyHistogram forward, shuffled;
  for (double s : samples) forward.record(s);
  std::reverse(samples.begin(), samples.end());
  for (double s : samples) shuffled.record(s);
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(forward.percentile(p), shuffled.percentile(p));
  }
}

TEST(LatencyHistogram, FallsBackToBucketsPastTheExactCap) {
  LatencyHistogram h;
  const std::size_t n = LatencyHistogram::kExactCap + 500;
  for (std::size_t i = 0; i < n; ++i) h.record(1e-3);
  EXPECT_EQ(h.count(), n);
  // Bucketed readout: the upper edge of the bucket holding 1 ms — at
  // most one ratio step (12%) above the true value, and never below it.
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p99, 1e-3);
  EXPECT_LE(p99, 1e-3 * 1.12);
}

TEST(LatencyHistogram, MergeKeepsExactPathWhileUnderCap) {
  LatencyHistogram a, b;
  for (std::size_t i = 1; i <= 50; ++i) a.record(static_cast<double>(i));
  for (std::size_t i = 51; i <= 100; ++i) b.record(static_cast<double>(i));
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.percentile(0.99), 99.0);  // still exact
}

TEST(ServerStats, SnapshotCarriesJitter) {
  ServerStats stats;
  for (double l : {0.001, 0.002, 0.003}) stats.record_served(l);
  const StatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.served, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 0.002);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0 / 3.0) * 1e-3, 1e-12);
  EXPECT_DOUBLE_EQ(s.p50, 0.002);  // exact order statistic
}

}  // namespace
}  // namespace satd::serve
