// Admission-control semantics of the serve queue, driven on a FakeClock
// so deadline feasibility is exact.
#include "serve/queue.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace satd::serve {
namespace {

Tensor image() { return Tensor::full(Shape{1, 28, 28}, 0.5f); }

struct QueueHarness {
  explicit QueueHarness(QueueConfig cfg = {}) : queue(cfg, stats, clock) {}
  FakeClock clock{100.0};
  ServerStats stats;
  RequestQueue queue;
};

TEST(Queue, SubmitThenPopRoundTrips) {
  QueueHarness h;
  Ticket t = h.queue.submit(image());
  EXPECT_EQ(h.queue.depth(), 1u);

  Request req;
  ASSERT_TRUE(h.queue.pop(req));
  EXPECT_EQ(h.queue.depth(), 0u);
  EXPECT_DOUBLE_EQ(req.submit_time, 100.0);
  EXPECT_DOUBLE_EQ(req.deadline, 0.0);

  Response r;
  r.predicted = 7;
  req.promise.set_value(r);
  EXPECT_EQ(t.wait().predicted, 7u);
}

TEST(Queue, PopOnEmptyReturnsFalse) {
  QueueHarness h;
  Request req;
  EXPECT_FALSE(h.queue.pop(req));
}

TEST(Queue, FullQueueRejectsTyped) {
  QueueConfig cfg;
  cfg.capacity = 2;
  QueueHarness h(cfg);
  Ticket a = h.queue.submit(image());
  Ticket b = h.queue.submit(image());
  Ticket c = h.queue.submit(image());

  Response r = c.wait();  // resolves immediately
  EXPECT_EQ(r.error, ServeError::kQueueFull);
  EXPECT_EQ(h.queue.depth(), 2u);
  EXPECT_EQ(h.stats.snapshot().rejected_full, 1u);
}

TEST(Queue, PastDeadlineIsInfeasible) {
  QueueHarness h;  // clock at 100
  Ticket t = h.queue.submit(image(), /*deadline=*/99.0);
  EXPECT_EQ(t.wait().error, ServeError::kDeadlineInfeasible);
  EXPECT_EQ(h.queue.depth(), 0u);
  EXPECT_EQ(h.stats.snapshot().rejected_infeasible, 1u);
}

TEST(Queue, MinSlackExtendsTheFeasibilityHorizon) {
  QueueConfig cfg;
  cfg.min_slack = 0.5;
  QueueHarness h(cfg);  // clock at 100
  // 100.4 is in the future but closer than now + min_slack: infeasible.
  EXPECT_EQ(h.queue.submit(image(), 100.4).wait().error,
            ServeError::kDeadlineInfeasible);
  // 100.6 clears the horizon: admitted.
  Ticket ok = h.queue.submit(image(), 100.6);
  EXPECT_EQ(h.queue.depth(), 1u);
}

TEST(Queue, ZeroDeadlineMeansNoDeadline) {
  QueueConfig cfg;
  cfg.min_slack = 10.0;
  QueueHarness h(cfg);
  h.queue.submit(image(), 0.0);
  EXPECT_EQ(h.queue.depth(), 1u);
}

TEST(Queue, DrainClosesAdmissionButKeepsBacklogPoppable) {
  QueueHarness h;
  Ticket a = h.queue.submit(image());
  h.queue.begin_drain();
  EXPECT_TRUE(h.queue.draining());
  EXPECT_FALSE(h.queue.drained());  // backlog not yet served

  Ticket late = h.queue.submit(image());
  EXPECT_EQ(late.wait().error, ServeError::kStopping);
  EXPECT_EQ(h.stats.snapshot().rejected_stopping, 1u);

  Request req;
  ASSERT_TRUE(h.queue.pop(req));
  EXPECT_TRUE(h.queue.drained());
}

TEST(Queue, ExpectedDelayExtendsTheFeasibilityHorizon) {
  // The policy horizon (expected window + service, supplied by the
  // server) adds to min_slack: a deadline that clears min_slack alone
  // but not min_slack + horizon is hopeless and must bounce at
  // admission, not age in the queue.
  QueueConfig cfg;
  cfg.min_slack = 0.1;
  cfg.expected_delay = [] { return 0.4; };
  QueueHarness h(cfg);  // clock at 100
  EXPECT_EQ(h.queue.submit(image(), 100.3).wait().error,
            ServeError::kDeadlineInfeasible);
  EXPECT_EQ(h.stats.snapshot().rejected_infeasible, 1u);
  Ticket ok = h.queue.submit(image(), 100.6);
  EXPECT_EQ(h.queue.depth(), 1u);
}

TEST(Queue, UrgentLanePopsBeforeOlderRelaxedRequests) {
  // A tight-deadline request submitted LAST must come out FIRST: the
  // priority lane bypasses the FIFO so the batcher stages urgent work
  // before window forming can starve it.
  QueueConfig cfg;
  cfg.urgent_slack = 1.0;
  QueueHarness h(cfg);  // clock at 100
  Ticket relaxed1 = h.queue.submit(image());              // no deadline
  Ticket relaxed2 = h.queue.submit(image(), 200.0);       // loose deadline
  Ticket urgent = h.queue.submit(image(), 100.5);         // slack 0.5 < 1.0

  Request req;
  ASSERT_TRUE(h.queue.pop(req));
  EXPECT_TRUE(req.urgent);
  EXPECT_DOUBLE_EQ(req.deadline, 100.5);
  ASSERT_TRUE(h.queue.pop(req));  // then FIFO order resumes
  EXPECT_FALSE(req.urgent);
  EXPECT_DOUBLE_EQ(req.deadline, 0.0);
  ASSERT_TRUE(h.queue.pop(req));
  EXPECT_DOUBLE_EQ(req.deadline, 200.0);
  EXPECT_EQ(h.queue.depth(), 0u);
}

TEST(Queue, UrgentLaneDisabledByDefault) {
  QueueHarness h;  // urgent_slack = 0: nothing is ever urgent
  h.queue.submit(image(), 100.001);
  Request req;
  ASSERT_TRUE(h.queue.pop(req));
  EXPECT_FALSE(req.urgent);
}

TEST(Queue, CancelFreesTheSlotAndResolvesTyped) {
  QueueConfig cfg;
  cfg.capacity = 1;
  QueueHarness h(cfg);
  std::uint64_t id = 0;
  Ticket t = h.queue.submit(image(), 0.0, &id);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(h.queue.depth(), 1u);

  EXPECT_TRUE(h.queue.cancel(id));
  EXPECT_EQ(h.queue.depth(), 0u);
  const Response r = t.wait();  // resolved, not hung
  EXPECT_EQ(r.error, ServeError::kCancelled);
  EXPECT_EQ(h.stats.snapshot().cancelled, 1u);

  // The freed slot is immediately reusable (the point of cancelling).
  Ticket again = h.queue.submit(image());
  EXPECT_EQ(h.queue.depth(), 1u);
  Request req;
  ASSERT_TRUE(h.queue.pop(req));
  req.promise.set_value(Response{});
  EXPECT_EQ(again.wait().error, ServeError::kNone);
}

TEST(Queue, CancelAfterPopIsABenignNoOp) {
  QueueHarness h;
  std::uint64_t id = 0;
  Ticket t = h.queue.submit(image(), 0.0, &id);
  Request req;
  ASSERT_TRUE(h.queue.pop(req));
  EXPECT_FALSE(h.queue.cancel(id));  // already in flight
  Response r;
  r.predicted = 3;
  req.promise.set_value(r);  // served into the (still live) ticket
  EXPECT_EQ(t.wait().predicted, 3u);
}

TEST(Queue, CancelUnknownIdReturnsFalse) {
  QueueHarness h;
  EXPECT_FALSE(h.queue.cancel(42));
  EXPECT_FALSE(h.queue.cancel(0));
}

TEST(Queue, CancelReachesTheUrgentLane) {
  QueueConfig cfg;
  cfg.urgent_slack = 10.0;
  QueueHarness h(cfg);  // clock at 100
  std::uint64_t id = 0;
  Ticket t = h.queue.submit(image(), /*deadline=*/105.0, &id);  // urgent
  ASSERT_NE(id, 0u);
  EXPECT_TRUE(h.queue.cancel(id));
  EXPECT_EQ(t.wait().error, ServeError::kCancelled);
  Request req;
  EXPECT_FALSE(h.queue.pop(req));
}

TEST(Queue, RejectedSubmitWritesZeroId) {
  QueueConfig cfg;
  cfg.capacity = 1;
  QueueHarness h(cfg);
  std::uint64_t first = 0, second = 77;
  h.queue.submit(image(), 0.0, &first);
  Ticket rejected = h.queue.submit(image(), 0.0, &second);
  EXPECT_NE(first, 0u);
  EXPECT_EQ(second, 0u);  // rejected: nothing to cancel
  EXPECT_EQ(rejected.wait().error, ServeError::kQueueFull);
}

TEST(Queue, DepthHighWaterMarkIsTracked) {
  QueueHarness h;
  h.queue.submit(image());
  h.queue.submit(image());
  h.queue.submit(image());
  Request req;
  h.queue.pop(req);
  h.queue.submit(image());
  EXPECT_EQ(h.stats.snapshot().max_queue_depth, 3u);
}

}  // namespace
}  // namespace satd::serve
