// Deterministic single-threaded microbatcher tests: the (max_batch,
// max_wait) window on a FakeClock, deadline filtering, hot-swap at batch
// boundaries, and the batched == batch-of-1 bit-identity contract.
#include "serve/microbatcher.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/loss.h"
#include "nn/zoo.h"
#include "serve/registry.h"

namespace satd::serve {
namespace {

/// Everything one single-threaded batching test needs, on a FakeClock.
struct Harness {
  explicit Harness(BatchPolicy policy, QueueConfig qcfg = {})
      : queue(qcfg, stats, clock),
        batcher(registry, "m", queue, stats, clock, policy) {}

  ModelRegistry registry;
  FakeClock clock{0.0};
  ServerStats stats;
  RequestQueue queue;
  Microbatcher batcher;
};

BatchPolicy policy(std::size_t max_batch, double max_wait,
                   double poll = 0.0005) {
  BatchPolicy p;
  p.max_batch = max_batch;
  p.max_wait = max_wait;
  p.poll_interval = poll;
  return p;
}

Tensor test_images(std::size_t n) {
  data::SyntheticConfig cfg;
  cfg.train_size = n;
  cfg.test_size = 1;
  return data::make_synthetic_digits(cfg).train.images;
}

void publish(ModelRegistry& registry, std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  registry.publish("m", m, "mlp_small");
}

TEST(Microbatcher, StepOnEmptyQueueDoesNothing) {
  Harness h(policy(4, 0.001));
  publish(h.registry, 1);
  EXPECT_FALSE(h.batcher.step());
  EXPECT_TRUE(h.clock.sleeps().empty());
}

TEST(Microbatcher, ServesASingleRequest) {
  Harness h(policy(4, 0.002));
  publish(h.registry, 1);
  const Tensor images = test_images(1);
  Ticket t = h.queue.submit(images.slice_row(0));

  ASSERT_TRUE(h.batcher.step());
  Response r = t.wait();
  EXPECT_EQ(r.error, ServeError::kNone);
  EXPECT_EQ(r.batch_size, 1u);
  EXPECT_EQ(r.model_version, 1u);
  EXPECT_EQ(r.probabilities.size(), 10u);

  // The response matches a direct forward through the published model.
  nn::Sequential replica =
      ModelRegistry::instantiate(*h.registry.current("m"));
  Tensor batch(Shape{1, 1, 28, 28});
  batch.set_row(0, images.slice_row(0));
  const Tensor probs = nn::softmax(replica.forward(batch, false));
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(r.probabilities[k], probs[k]);
  }
}

TEST(Microbatcher, WindowHoldsExactlyMaxWaitInPollQuanta) {
  // One request, a batch that can't fill: the window must poll in
  // poll_interval steps until exactly max_wait has elapsed, then serve.
  Harness h(policy(4, 0.002, 0.0005));
  publish(h.registry, 1);
  Ticket t = h.queue.submit(test_images(1).slice_row(0));
  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(h.clock.sleeps().size(), 4u);  // 4 x 0.0005 = max_wait
  for (double s : h.clock.sleeps()) EXPECT_DOUBLE_EQ(s, 0.0005);
  EXPECT_EQ(t.wait().batch_size, 1u);
}

TEST(Microbatcher, FullBatchClosesTheWindowEarly) {
  Harness h(policy(3, 10.0));  // a huge window that must NOT be waited out
  publish(h.registry, 1);
  const Tensor images = test_images(5);
  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < 5; ++i) {
    tickets.push_back(h.queue.submit(images.slice_row(i)));
  }

  ASSERT_TRUE(h.batcher.step());
  EXPECT_TRUE(h.clock.sleeps().empty());  // filled instantly, no polling
  EXPECT_EQ(tickets[0].wait().batch_size, 3u);
  EXPECT_EQ(tickets[2].wait().batch_size, 3u);

  ASSERT_TRUE(h.batcher.step());  // the remaining two
  EXPECT_EQ(tickets[3].wait().batch_size, 2u);
  EXPECT_EQ(h.stats.snapshot().served, 5u);
  EXPECT_EQ(h.stats.snapshot().batches, 2u);
}

TEST(Microbatcher, BatchedIsBitIdenticalToBatchOfOne) {
  // The micro-batching contract: coalescing must not change a single
  // bit of any response. Serve six images in one batch and then the same
  // six individually; every probability must be exactly equal.
  const Tensor images = test_images(6);

  Harness batched(policy(8, 0.001));
  publish(batched.registry, 3);
  std::vector<Ticket> tb;
  for (std::size_t i = 0; i < 6; ++i) {
    tb.push_back(batched.queue.submit(images.slice_row(i)));
  }
  ASSERT_TRUE(batched.batcher.step());

  Harness single(policy(1, 0.0));
  publish(single.registry, 3);  // same seed -> same published model
  std::vector<Ticket> ts;
  for (std::size_t i = 0; i < 6; ++i) {
    ts.push_back(single.queue.submit(images.slice_row(i)));
  }
  for (std::size_t i = 0; i < 6; ++i) ASSERT_TRUE(single.batcher.step());

  for (std::size_t i = 0; i < 6; ++i) {
    Response rb = tb[i].wait();
    Response rs = ts[i].wait();
    ASSERT_EQ(rb.error, ServeError::kNone);
    ASSERT_EQ(rs.error, ServeError::kNone);
    EXPECT_EQ(rb.batch_size, 6u);
    EXPECT_EQ(rs.batch_size, 1u);
    EXPECT_EQ(rb.predicted, rs.predicted);
    ASSERT_EQ(rb.probabilities.size(), rs.probabilities.size());
    for (std::size_t k = 0; k < rb.probabilities.size(); ++k) {
      EXPECT_EQ(rb.probabilities[k], rs.probabilities[k])
          << "image " << i << " class " << k;
    }
  }
}

TEST(Microbatcher, ExpiredDeadlinesAreFilteredNotServed) {
  // Request A's deadline passes while the window waits for the batch to
  // fill; it must resolve as kDeadlineMiss while B (no deadline) is
  // served normally.
  Harness h(policy(4, 0.004, 0.002));
  publish(h.registry, 1);
  const Tensor images = test_images(2);
  Ticket a = h.queue.submit(images.slice_row(0), /*deadline=*/0.003);
  Ticket b = h.queue.submit(images.slice_row(1));

  ASSERT_TRUE(h.batcher.step());  // window advances the clock past 0.003
  Response ra = a.wait();
  EXPECT_EQ(ra.error, ServeError::kDeadlineMiss);
  EXPECT_TRUE(ra.probabilities.empty());
  Response rb = b.wait();
  EXPECT_EQ(rb.error, ServeError::kNone);
  EXPECT_EQ(rb.batch_size, 1u);  // the expired request is not in the batch
  EXPECT_EQ(h.stats.snapshot().deadline_misses, 1u);
  EXPECT_EQ(h.stats.snapshot().served, 1u);
}

TEST(Microbatcher, NoPublishedModelYieldsTypedError) {
  Harness h(policy(2, 0.0));
  Ticket t = h.queue.submit(test_images(1).slice_row(0));
  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(t.wait().error, ServeError::kNoModel);
  EXPECT_EQ(h.stats.snapshot().no_model, 1u);
}

TEST(Microbatcher, HotSwapLandsAtTheNextBatchBoundary) {
  Harness h(policy(2, 0.0));
  publish(h.registry, 1);
  const Tensor images = test_images(4);

  Ticket t1 = h.queue.submit(images.slice_row(0));
  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(t1.wait().model_version, 1u);
  EXPECT_EQ(h.batcher.replica_version(), 1u);

  publish(h.registry, 2);  // hot swap
  Ticket t2 = h.queue.submit(images.slice_row(1));
  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(t2.wait().model_version, 2u);
  EXPECT_EQ(h.batcher.replica_version(), 2u);
}

TEST(Microbatcher, RunDrainsTheBacklogThenExits) {
  Harness h(policy(3, 0.001));
  publish(h.registry, 1);
  const Tensor images = test_images(7);
  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < 7; ++i) {
    tickets.push_back(h.queue.submit(images.slice_row(i)));
  }
  h.queue.begin_drain();
  h.batcher.run();  // must serve all 7 and return
  for (Ticket& t : tickets) {
    EXPECT_EQ(t.wait().error, ServeError::kNone);
  }
  EXPECT_EQ(h.stats.snapshot().served, 7u);
  EXPECT_TRUE(h.queue.drained());
}

}  // namespace
}  // namespace satd::serve
