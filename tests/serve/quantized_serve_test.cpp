// Quantized serving mode: publish() attaches an int8 snapshot, a
// microbatcher with policy.quantized serves through it, and the serving
// invariants (batched == batch-of-1 bit-identity, hot swap at batch
// boundaries, kNoModel before the first publish) carry over unchanged
// from the float path.
#include "serve/microbatcher.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/quantized.h"
#include "nn/zoo.h"
#include "serve/registry.h"

namespace satd::serve {
namespace {

struct Harness {
  explicit Harness(BatchPolicy policy, QueueConfig qcfg = {})
      : queue(qcfg, stats, clock),
        batcher(registry, "m", queue, stats, clock, policy) {}

  ModelRegistry registry;
  FakeClock clock{0.0};
  ServerStats stats;
  RequestQueue queue;
  Microbatcher batcher;
};

BatchPolicy quantized_policy(std::size_t max_batch, double max_wait) {
  BatchPolicy p;
  p.max_batch = max_batch;
  p.max_wait = max_wait;
  p.poll_interval = 0.0005;
  p.quantized = true;
  return p;
}

Tensor test_images(std::size_t n) {
  data::SyntheticConfig cfg;
  cfg.train_size = n;
  cfg.test_size = 1;
  return data::make_synthetic_digits(cfg).train.images;
}

void publish(ModelRegistry& registry, std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  registry.publish("m", m, "mlp_small");
}

TEST(QuantizedServe, PublishAttachesAQuantizedSnapshot) {
  ModelRegistry registry;
  publish(registry, 1);
  const auto snapshot = registry.current("m");
  ASSERT_NE(snapshot, nullptr);
  ASSERT_NE(snapshot->quantized, nullptr);
  EXPECT_GT(snapshot->quantized->op_count(), 0u);
}

TEST(QuantizedServe, NoModelYieldsKNoModel) {
  Harness h(quantized_policy(4, 0.002));
  Ticket t = h.queue.submit(test_images(1).slice_row(0));
  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(t.wait().error, ServeError::kNoModel);
}

TEST(QuantizedServe, ResponseMatchesDirectQuantizedPredict) {
  Harness h(quantized_policy(4, 0.002));
  publish(h.registry, 1);
  const Tensor images = test_images(1);
  Ticket t = h.queue.submit(images.slice_row(0));

  ASSERT_TRUE(h.batcher.step());
  Response r = t.wait();
  ASSERT_EQ(r.error, ServeError::kNone);
  EXPECT_EQ(r.model_version, 1u);
  ASSERT_EQ(r.probabilities.size(), 10u);

  // The served prediction matches predict_quantized_into on the same
  // snapshot — serving and evaluation share one quantized forward.
  const auto snapshot = h.registry.current("m");
  Tensor batch(Shape{1, 1, 28, 28});
  batch.set_row(0, images.slice_row(0));
  Tensor logits;
  std::vector<std::size_t> preds;
  nn::QuantizedWorkspace ws;
  metrics::predict_quantized_into(*snapshot->quantized, batch, 4, logits,
                                  preds, ws);
  EXPECT_EQ(r.predicted, preds[0]);
}

TEST(QuantizedServe, BatchedMatchesBatchOfOneBitIdentically) {
  // Serve five requests in one batch, then the same five one at a time
  // through a fresh harness: per-row activation quantization makes the
  // probability vectors bit-identical.
  const Tensor images = test_images(5);

  Harness batched(quantized_policy(5, 10.0));
  publish(batched.registry, 3);
  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < 5; ++i) {
    tickets.push_back(batched.queue.submit(images.slice_row(i)));
  }
  ASSERT_TRUE(batched.batcher.step());

  Harness single(quantized_policy(1, 10.0));
  publish(single.registry, 3);
  for (std::size_t i = 0; i < 5; ++i) {
    Ticket t = single.queue.submit(images.slice_row(i));
    ASSERT_TRUE(single.batcher.step());
    Response one = t.wait();
    Response many = tickets[i].wait();
    ASSERT_EQ(one.error, ServeError::kNone);
    ASSERT_EQ(many.error, ServeError::kNone);
    EXPECT_EQ(many.batch_size, 5u);
    EXPECT_EQ(one.predicted, many.predicted);
    ASSERT_EQ(one.probabilities.size(), many.probabilities.size());
    for (std::size_t k = 0; k < one.probabilities.size(); ++k) {
      EXPECT_EQ(one.probabilities[k], many.probabilities[k]) << i << "," << k;
    }
  }
}

TEST(QuantizedServe, HotSwapAdoptsTheNewQuantizedSnapshot) {
  Harness h(quantized_policy(1, 0.002));
  publish(h.registry, 1);
  const Tensor images = test_images(2);

  Ticket t1 = h.queue.submit(images.slice_row(0));
  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(t1.wait().model_version, 1u);

  publish(h.registry, 2);  // version 2, different weights
  Ticket t2 = h.queue.submit(images.slice_row(1));
  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(t2.wait().model_version, 2u);
}

}  // namespace
}  // namespace satd::serve
