// Robustness-monitor tests: sampling cadence, bounded pending buffer,
// deterministic collapse alarm via a handcrafted model pair, and the
// isolation contract — enabling the monitor changes no served response.
#include "serve/robustness_monitor.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "serve/server.h"

namespace satd::serve {
namespace {

Tensor uniform_image() { return Tensor::full(Shape{1, 28, 28}, 0.2f); }

/// All-zero mlp_small: logits are identically zero, argmax is class 0 on
/// ANY input, and the attack gradient is zero — every BIM probe targeting
/// class 0 survives. The "robust" half of the alarm scenario.
nn::Sequential zero_model() {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  for (Tensor* p : m.parameters()) {
    for (float& v : p->data()) v = 0.0f;
  }
  return m;
}

/// Margin model: only pixel 0 reaches hidden unit 0 (h0 = x[0]), and the
/// output weights give class 0 the edge iff h0 is large enough:
///   logit0 = h0, logit1 = 0.9 * h0 + 0.01.
/// On the uniform 0.2 image: logits (0.2, 0.19) -> predicts 0, and the
/// cross-entropy gradient on x[0] is robustly negative (~ -0.8, far from
/// float cancellation). BIM(eps=0.3, N=3) steps x[0] down 0.1 per
/// iteration to 0, where logits become (0, 0.01) -> predicts 1. Every
/// probe deterministically FAILS. The "collapsed" half of the scenario.
nn::Sequential margin_model() {
  nn::Sequential m = zero_model();
  std::vector<Tensor*> params = m.parameters();
  params[0]->data()[0] = 1.0f;   // W1[0, 0]: h0 = x[0]
  params[2]->data()[0] = 1.0f;   // W2[0, 0]
  params[2]->data()[1] = 0.9f;   // W2[0, 1]
  params[3]->data()[1] = 0.01f;  // b2[1]
  return m;
}

MonitorConfig probe_every_request() {
  MonitorConfig cfg;
  cfg.sample_period = 1;
  cfg.window = 4;
  cfg.eps = 0.3f;
  cfg.iterations = 3;
  cfg.collapse_fraction = 0.5f;
  cfg.min_baseline = 0.2f;
  return cfg;
}

TEST(Monitor, SamplesOneInPeriodObservations) {
  ModelRegistry registry;
  MonitorConfig cfg;
  cfg.sample_period = 4;
  RobustnessMonitor monitor(registry, "m", cfg);
  const Tensor img = uniform_image();
  for (std::size_t i = 0; i < 12; ++i) monitor.observe(img, 0);

  const MonitorReport r = monitor.report();
  EXPECT_EQ(r.observed, 12u);
  EXPECT_EQ(r.sampled, 3u);  // observations 4, 8, 12
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.probed, 0u);  // nothing stepped yet
  EXPECT_FLOAT_EQ(r.robust_fraction, -1.0f);
}

TEST(Monitor, PendingBufferIsBoundedAndDropsAreCounted) {
  ModelRegistry registry;
  MonitorConfig cfg;
  cfg.sample_period = 1;
  cfg.max_pending = 2;
  RobustnessMonitor monitor(registry, "m", cfg);
  const Tensor img = uniform_image();
  for (std::size_t i = 0; i < 5; ++i) monitor.observe(img, 0);

  const MonitorReport r = monitor.report();
  EXPECT_EQ(r.sampled, 2u);
  EXPECT_EQ(r.dropped, 3u);
}

TEST(Monitor, StepWithoutPublishedModelSkipsQuietly) {
  ModelRegistry registry;  // nothing published
  RobustnessMonitor monitor(registry, "m", probe_every_request());
  monitor.observe(uniform_image(), 0);
  EXPECT_TRUE(monitor.step());  // consumed the sample...
  EXPECT_EQ(monitor.report().probed, 0u);  // ...but could not probe
  EXPECT_FALSE(monitor.step());
}

TEST(Monitor, SurvivingProbesFillTheRollingWindow) {
  ModelRegistry registry;
  nn::Sequential m = zero_model();
  registry.publish("m", m, "mlp_small");
  RobustnessMonitor monitor(registry, "m", probe_every_request());

  const Tensor img = uniform_image();
  for (std::size_t i = 0; i < 3; ++i) {
    monitor.observe(img, /*predicted=*/0);
    ASSERT_TRUE(monitor.step());
  }
  const MonitorReport r = monitor.report();
  EXPECT_EQ(r.probed, 3u);
  EXPECT_FLOAT_EQ(r.robust_fraction, 1.0f);
  EXPECT_FLOAT_EQ(r.best_fraction, 1.0f);
  EXPECT_EQ(r.alarms, 0u);
}

TEST(Monitor, AlarmFiresWhenAHotSwapCollapsesRobustness) {
  // Phase 1: the zero model survives every probe -> best fraction 1.0.
  // Phase 2: hot-swap to the margin model, which fails every probe. As
  // failures displace the window [1,1,1,1] -> 0.75 -> 0.5 -> 0.25 -> 0,
  // the alarm must fire exactly when the fraction drops BELOW
  // collapse_fraction * best = 0.5 (probes 7 and 8).
  ModelRegistry registry;
  nn::Sequential robust = zero_model();
  registry.publish("m", robust, "mlp_small");
  RobustnessMonitor monitor(registry, "m", probe_every_request());

  const Tensor img = uniform_image();
  for (std::size_t i = 0; i < 4; ++i) {
    monitor.observe(img, 0);
    ASSERT_TRUE(monitor.step());
  }
  EXPECT_EQ(monitor.report().alarms, 0u);

  nn::Sequential fragile = margin_model();
  registry.publish("m", fragile, "mlp_small");  // version 2
  for (std::size_t i = 0; i < 4; ++i) {
    monitor.observe(img, 0);
    ASSERT_TRUE(monitor.step());
  }

  const MonitorReport r = monitor.report();
  EXPECT_EQ(r.probed, 8u);
  EXPECT_EQ(r.alarms, 2u);
  EXPECT_FLOAT_EQ(r.robust_fraction, 0.0f);
  EXPECT_FLOAT_EQ(r.best_fraction, 1.0f);
}

TEST(Monitor, EnablingTheMonitorChangesNoServedResponse) {
  // The isolation contract: probes run on a private replica off the
  // request path, so serving with the monitor hammering every request is
  // bit-identical to serving without it.
  data::SyntheticConfig dcfg;
  dcfg.train_size = 8;
  dcfg.test_size = 1;
  const Tensor pool = data::make_synthetic_digits(dcfg).train.images;

  ModelRegistry registry;
  {
    Rng rng(17);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    registry.publish("m", m, "mlp_small");
  }

  auto serve_all = [&](bool with_monitor) {
    ServerConfig cfg;
    cfg.model_name = "m";
    cfg.workers = 1;
    cfg.enable_monitor = with_monitor;
    cfg.monitor.sample_period = 1;  // probe every single request
    cfg.monitor.eps = 0.3f;
    Server server(registry, cfg);
    server.start();
    std::vector<Response> out;
    for (std::size_t i = 0; i < 8; ++i) {
      out.push_back(server.submit(pool.slice_row(i)).wait());
    }
    server.drain();
    if (with_monitor) {
      EXPECT_EQ(server.monitor()->report().observed, 8u);
    } else {
      EXPECT_EQ(server.monitor(), nullptr);
    }
    return out;
  };

  const std::vector<Response> plain = serve_all(false);
  const std::vector<Response> monitored = serve_all(true);
  ASSERT_EQ(plain.size(), monitored.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].error, ServeError::kNone);
    EXPECT_EQ(monitored[i].error, ServeError::kNone);
    EXPECT_EQ(plain[i].predicted, monitored[i].predicted);
    EXPECT_EQ(plain[i].probabilities, monitored[i].probabilities) << i;
  }
}

TEST(Monitor, AlarmStateIsQueryableAndLatched) {
  // The programmatic twin of the alarm counter: alarmed() flips true at
  // the first collapse and stays true (latched) until reset().
  ModelRegistry registry;
  nn::Sequential robust = zero_model();
  registry.publish("m", robust, "mlp_small");
  RobustnessMonitor monitor(registry, "m", probe_every_request());
  EXPECT_FALSE(monitor.alarmed());

  const Tensor img = uniform_image();
  for (std::size_t i = 0; i < 4; ++i) {
    monitor.observe(img, 0);
    ASSERT_TRUE(monitor.step());
  }
  EXPECT_FALSE(monitor.alarmed());

  nn::Sequential fragile = margin_model();
  registry.publish("m", fragile, "mlp_small");
  for (std::size_t i = 0; i < 4; ++i) {
    monitor.observe(img, 0);
    ASSERT_TRUE(monitor.step());
  }
  EXPECT_TRUE(monitor.alarmed());

  // Robust probes after the collapse do NOT clear the latch...
  nn::Sequential good = zero_model();
  registry.publish("m", good, "mlp_small");
  monitor.observe(img, 0);
  ASSERT_TRUE(monitor.step());
  EXPECT_TRUE(monitor.alarmed());
  // ...only reset() does.
  monitor.reset();
  EXPECT_FALSE(monitor.alarmed());
}

TEST(Monitor, AlarmCallbackFiresWithTheReportAtAlarm) {
  ModelRegistry registry;
  nn::Sequential robust = zero_model();
  registry.publish("m", robust, "mlp_small");
  RobustnessMonitor monitor(registry, "m", probe_every_request());

  std::vector<MonitorReport> alarms;
  monitor.set_alarm_callback(
      [&alarms](const MonitorReport& r) { alarms.push_back(r); });

  const Tensor img = uniform_image();
  for (std::size_t i = 0; i < 4; ++i) {
    monitor.observe(img, 0);
    ASSERT_TRUE(monitor.step());
  }
  EXPECT_TRUE(alarms.empty());

  nn::Sequential fragile = margin_model();
  registry.publish("m", fragile, "mlp_small");
  for (std::size_t i = 0; i < 4; ++i) {
    monitor.observe(img, 0);
    ASSERT_TRUE(monitor.step());
  }
  // The window decays 1.0 -> 0.75 -> 0.5 -> 0.25 -> 0; alarms fire at
  // 0.25 and 0 (below 0.5 * best), each invoking the callback with the
  // report at that instant.
  ASSERT_EQ(alarms.size(), 2u);
  EXPECT_FLOAT_EQ(alarms[0].robust_fraction, 0.25f);
  EXPECT_FLOAT_EQ(alarms[1].robust_fraction, 0.0f);
  EXPECT_EQ(alarms[1].alarms, 2u);

  // Clearing the hook stops deliveries; the counter keeps counting.
  monitor.set_alarm_callback(nullptr);
  monitor.observe(img, 0);
  ASSERT_TRUE(monitor.step());
  EXPECT_EQ(alarms.size(), 2u);
  EXPECT_GE(monitor.report().alarms, 3u);
}

TEST(Monitor, ResetStartsAFreshObservationWindow) {
  // reset() clears the window, baseline and latch but keeps cumulative
  // telemetry — the router's per-rollout bookkeeping depends on both.
  ModelRegistry registry;
  nn::Sequential robust = zero_model();
  registry.publish("m", robust, "mlp_small");
  RobustnessMonitor monitor(registry, "m", probe_every_request());

  const Tensor img = uniform_image();
  for (std::size_t i = 0; i < 4; ++i) {
    monitor.observe(img, 0);
    ASSERT_TRUE(monitor.step());
  }
  const MonitorReport before = monitor.report();
  EXPECT_FLOAT_EQ(before.best_fraction, 1.0f);

  monitor.reset();
  const MonitorReport after = monitor.report();
  EXPECT_FLOAT_EQ(after.robust_fraction, -1.0f);  // fresh window
  EXPECT_FLOAT_EQ(after.best_fraction, -1.0f);    // fresh baseline
  EXPECT_EQ(after.alarms, 0u);
  EXPECT_EQ(after.probed, before.probed);      // telemetry survives
  EXPECT_EQ(after.observed, before.observed);
}

TEST(Monitor, StartAndStopAreIdempotent) {
  ModelRegistry registry;
  nn::Sequential m = zero_model();
  registry.publish("m", m, "mlp_small");
  MonitorConfig cfg = probe_every_request();
  cfg.idle_wait = 0.0001;
  RobustnessMonitor monitor(registry, "m", cfg);
  monitor.start();
  monitor.start();
  monitor.observe(uniform_image(), 0);
  monitor.stop();
  monitor.stop();  // and the destructor stops again harmlessly
}

}  // namespace
}  // namespace satd::serve
