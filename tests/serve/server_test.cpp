// Threaded end-to-end server tests (real SystemClock): bit-identical
// serving at 1/2/4 workers, graceful drain, typed overload rejection and
// hot-swap consistency under concurrent load.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/loss.h"
#include "nn/zoo.h"

namespace satd::serve {
namespace {

Tensor image_pool(std::size_t n) {
  data::SyntheticConfig cfg;
  cfg.train_size = n;
  cfg.test_size = 1;
  return data::make_synthetic_digits(cfg).train.images;
}

void publish_seeded(ModelRegistry& registry, const std::string& name,
                    std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  registry.publish(name, m, "mlp_small");
}

/// Reference softmax rows for every pool image, computed one-by-one on a
/// private replica — the ground truth every served response must equal
/// bit-for-bit.
std::vector<std::vector<float>> reference_probs(ModelRegistry& registry,
                                                const std::string& name,
                                                const Tensor& pool) {
  nn::Sequential replica =
      ModelRegistry::instantiate(*registry.current(name));
  const std::size_t n = pool.shape()[0];
  std::vector<std::vector<float>> out(n);
  Tensor batch(Shape{1, 1, 28, 28});
  for (std::size_t i = 0; i < n; ++i) {
    batch.set_row(0, pool.slice_row(i));
    const Tensor probs = nn::softmax(replica.forward(batch, false));
    out[i].assign(probs.raw(), probs.raw() + probs.numel());
  }
  return out;
}

TEST(Server, BitIdenticalServingAtOneTwoFourWorkers) {
  const Tensor pool = image_pool(8);
  ModelRegistry registry;
  publish_seeded(registry, "m", 42);
  const auto expected = reference_probs(registry, "m", pool);

  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ServerConfig cfg;
    cfg.model_name = "m";
    cfg.workers = workers;
    cfg.batch.max_batch = 4;
    cfg.batch.max_wait = 0.001;
    Server server(registry, cfg);
    server.start();

    // Concurrent clients so batches actually coalesce across requests.
    const std::size_t per_client = 24;
    std::vector<std::thread> clients;
    std::atomic<std::size_t> mismatches{0};
    for (std::size_t c = 0; c < 3; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(100 + c);
        for (std::size_t i = 0; i < per_client; ++i) {
          const std::size_t idx = rng.uniform_index(pool.shape()[0]);
          Response r = server.submit(pool.slice_row(idx)).wait();
          if (r.error != ServeError::kNone ||
              r.probabilities != expected[idx]) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    server.drain();
    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(server.stats().snapshot().served, 3 * per_client);
  }
}

TEST(Server, DrainResolvesEveryAdmittedTicket) {
  const Tensor pool = image_pool(4);
  ModelRegistry registry;
  publish_seeded(registry, "m", 1);
  ServerConfig cfg;
  cfg.model_name = "m";
  cfg.workers = 2;
  cfg.queue.capacity = 1024;
  Server server(registry, cfg);
  server.start();

  // Fire-and-forget a backlog, then drain: every ticket must resolve as
  // served (capacity was never exceeded, no deadlines were set).
  std::vector<Ticket> tickets;
  Rng rng(3);
  for (std::size_t i = 0; i < 64; ++i) {
    tickets.push_back(
        server.submit(pool.slice_row(rng.uniform_index(pool.shape()[0]))));
  }
  server.drain();
  for (Ticket& t : tickets) {
    EXPECT_EQ(t.wait().error, ServeError::kNone);
  }
  EXPECT_EQ(server.stats().snapshot().served, 64u);

  // After drain, admission is closed with a typed rejection.
  EXPECT_EQ(server.submit(pool.slice_row(0)).wait().error,
            ServeError::kStopping);
}

TEST(Server, OverloadYieldsTypedRejectionsNotBlocking) {
  const Tensor pool = image_pool(4);
  ModelRegistry registry;
  publish_seeded(registry, "m", 2);
  ServerConfig cfg;
  cfg.model_name = "m";
  cfg.workers = 1;
  cfg.queue.capacity = 8;
  cfg.batch.max_wait = 0.002;  // slow the worker so the queue can fill
  Server server(registry, cfg);
  server.start();

  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < 256; ++i) {
    tickets.push_back(server.submit(pool.slice_row(i % 4)));
  }
  std::size_t served = 0, rejected = 0;
  for (Ticket& t : tickets) {
    const Response r = t.wait();
    if (r.error == ServeError::kNone) {
      ++served;
    } else {
      ASSERT_EQ(r.error, ServeError::kQueueFull);
      ++rejected;
    }
  }
  server.drain();
  EXPECT_EQ(served + rejected, 256u);
  EXPECT_GT(rejected, 0u);  // 256 instant submits cannot all fit in 8 slots
  const StatsSnapshot s = server.stats().snapshot();
  EXPECT_EQ(s.served, served);
  EXPECT_EQ(s.rejected_full, rejected);
  EXPECT_LE(s.max_queue_depth, 8u);
}

TEST(Server, HotSwapUnderLoadNeverTearsAResponse) {
  // Two models with different weights; every response must carry the
  // probabilities of EXACTLY the version it reports — a response mixing
  // old and new weights (a torn swap) would match neither reference.
  const Tensor pool = image_pool(4);
  ModelRegistry registry;
  publish_seeded(registry, "m", 10);  // v1
  const auto probs_v1 = reference_probs(registry, "m", pool);
  {
    Rng rng(20);
    nn::Sequential v2 = nn::zoo::build("mlp_small", rng);
    ModelRegistry scratch;
    scratch.publish("m", v2, "mlp_small");
  }

  ServerConfig cfg;
  cfg.model_name = "m";
  cfg.workers = 2;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait = 0.0005;
  Server server(registry, cfg);
  server.start();

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> torn{0};
  std::atomic<std::size_t> checked{0};

  // Swapper: alternates v(odd) = seed 10 weights, v(even) = seed 20.
  std::thread swapper([&] {
    std::uint64_t flips = 0;
    while (!stop.load()) {
      publish_seeded(registry, "m", flips % 2 == 0 ? 20 : 10);
      ++flips;
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  // probs for seed-20 weights (they become even versions).
  ModelRegistry ref2;
  publish_seeded(ref2, "m", 20);
  const auto probs_v2 = reference_probs(ref2, "m", pool);

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(300 + c);
      for (std::size_t i = 0; i < 40; ++i) {
        const std::size_t idx = rng.uniform_index(pool.shape()[0]);
        Response r = server.submit(pool.slice_row(idx)).wait();
        if (r.error != ServeError::kNone) continue;
        checked.fetch_add(1);
        // Odd versions carry seed-10 weights, even versions seed-20.
        const auto& want =
            r.model_version % 2 == 1 ? probs_v1[idx] : probs_v2[idx];
        if (r.probabilities != want) torn.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true);
  swapper.join();
  server.drain();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(checked.load(), 120u);
}

TEST(Server, HopelessDeadlineIsRejectedAtAdmission) {
  // A window far longer than the timeout and a batch that can't fill:
  // the request could only be served dead. The feasibility horizon
  // (expected window + service) now catches this AT ADMISSION — the
  // request is rejected kDeadlineInfeasible instead of being admitted,
  // aged in the queue, and counted as a deadline miss.
  const Tensor pool = image_pool(2);
  ModelRegistry registry;
  publish_seeded(registry, "m", 5);
  ServerConfig cfg;
  cfg.model_name = "m";
  cfg.workers = 1;
  cfg.batch.max_batch = 16;
  cfg.batch.max_wait = 0.05;
  Server server(registry, cfg);
  server.start();

  Response r = server.submit(pool.slice_row(0), /*timeout=*/0.005).wait();
  EXPECT_EQ(r.error, ServeError::kDeadlineInfeasible);
  server.drain();
  const StatsSnapshot s = server.stats().snapshot();
  EXPECT_EQ(s.rejected_infeasible, 1u);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_EQ(s.served, 0u);
}

TEST(Server, FeasibleDeadlineIsAdmittedAndServed) {
  // A timeout comfortably beyond the expected window + service must
  // clear the feasibility horizon and be served normally.
  const Tensor pool = image_pool(2);
  ModelRegistry registry;
  publish_seeded(registry, "m", 6);
  ServerConfig cfg;
  cfg.model_name = "m";
  cfg.workers = 1;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait = 0.001;
  Server server(registry, cfg);
  server.start();

  Response r = server.submit(pool.slice_row(0), /*timeout=*/1.0).wait();
  EXPECT_EQ(r.error, ServeError::kNone);
  server.drain();
  EXPECT_EQ(server.stats().snapshot().served, 1u);
}

}  // namespace
}  // namespace satd::serve
