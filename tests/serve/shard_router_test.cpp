// Shard-router tests: deterministic hash/weighted routing, the canary
// rollout state machine on a FakeClock (rollback on alarm with
// bit-identical restored weights, promote on a clean window), eject/
// reinstate for stable shards, the audit journal, and a threaded
// end-to-end drill where a bad canary is rolled back with zero
// client-visible errors on the healthy shards.
#include "serve/shard_router.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "nn/zoo.h"

namespace satd::serve {
namespace {

Tensor uniform_image() { return Tensor::full(Shape{1, 28, 28}, 0.2f); }

/// All-zero mlp_small: zero logits, zero attack gradient — every BIM
/// probe survives (see monitor_test.cpp for the construction).
nn::Sequential zero_model() {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  for (Tensor* p : m.parameters()) {
    for (float& v : p->data()) v = 0.0f;
  }
  return m;
}

/// Margin model: predicts 0 on the uniform image but flips under BIM —
/// every probe deterministically fails (see monitor_test.cpp).
nn::Sequential margin_model() {
  nn::Sequential m = zero_model();
  std::vector<Tensor*> params = m.parameters();
  params[0]->data()[0] = 1.0f;
  params[2]->data()[0] = 1.0f;
  params[2]->data()[1] = 0.9f;
  params[3]->data()[1] = 0.01f;
  return m;
}

RouterConfig two_shards() {
  RouterConfig cfg;
  cfg.shards = 2;
  cfg.server.model_name = "m";
  cfg.server.monitor.sample_period = 1;
  cfg.server.monitor.window = 4;
  cfg.server.monitor.eps = 0.3f;
  cfg.server.monitor.iterations = 3;
  cfg.server.monitor.collapse_fraction = 0.5f;
  cfg.server.monitor.min_baseline = 0.2f;
  cfg.promote_after_probes = 4;
  return cfg;
}

/// Feeds the shard's monitor `n` deterministic probes of the uniform
/// image (predicted class 0) without any threads.
void probe_n(ShardRouter& router, std::size_t shard, std::size_t n) {
  RobustnessMonitor* monitor = router.shard(shard).monitor();
  ASSERT_NE(monitor, nullptr);
  const Tensor img = uniform_image();
  for (std::size_t i = 0; i < n; ++i) {
    monitor->observe(img, 0);
    ASSERT_TRUE(monitor->step());
  }
}

TEST(ShardRouter, RoutingIsDeterministicAndSpreadsKeys) {
  FakeClock clock;
  ShardRouter router(two_shards(), clock);
  std::set<std::size_t> hit;
  for (std::uint64_t key = 1; key <= 64; ++key) {
    const std::size_t s = router.route(key);
    EXPECT_EQ(s, router.route(key)) << "key " << key;  // stable
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), 2u);  // both shards take traffic
}

TEST(ShardRouter, KeyZeroRoundRobinsAcrossShards) {
  FakeClock clock;
  ShardRouter router(two_shards(), clock);
  std::set<std::size_t> hit;
  for (int i = 0; i < 32; ++i) hit.insert(router.route(0));
  EXPECT_EQ(hit.size(), 2u);
}

TEST(ShardRouter, ZeroWeightShardTakesNoTraffic) {
  RouterConfig cfg = two_shards();
  cfg.weights = {1.0, 0.0};
  FakeClock clock;
  ShardRouter router(cfg, clock);
  for (std::uint64_t key = 1; key <= 64; ++key) {
    EXPECT_EQ(router.route(key), 0u) << "key " << key;
  }
}

TEST(ShardRouter, CanaryFractionDivertsItsShareOfTheKeyspace) {
  RouterConfig cfg = two_shards();
  cfg.canary_fraction = 0.5;
  FakeClock clock;
  ShardRouter router(cfg, clock);
  nn::Sequential base = zero_model();
  router.publish(base, "mlp_small");
  nn::Sequential staged = zero_model();
  router.publish_canary(staged, "mlp_small", 1);
  ASSERT_EQ(router.state(1), ShardState::kCanary);

  std::size_t canary_hits = 0;
  const std::uint64_t keys = 512;
  for (std::uint64_t key = 1; key <= keys; ++key) {
    if (router.route(key) == 1) ++canary_hits;
  }
  // splitmix64 over 512 keys at fraction 0.5: expect roughly half, with
  // generous slack (deterministic, but we do not pin the mix).
  EXPECT_GT(canary_hits, keys / 4);
  EXPECT_LT(canary_hits, 3 * keys / 4);
}

TEST(ShardRouter, CanaryRollbackRestoresBitIdenticalWeights) {
  // The deterministic FakeClock drill: stage a canary that starts
  // healthy and then collapses, let its monitor convict it, and assert
  // tick() restores the pre-canary snapshot's exact payload under a
  // fresh version.
  RouterConfig cfg = two_shards();
  cfg.promote_after_probes = 100;  // keep the canary staged for the drill
  FakeClock clock;
  ShardRouter router(cfg, clock);
  nn::Sequential robust = zero_model();
  router.publish(robust, "mlp_small");
  const SnapshotPtr before = router.registry(1).current("m");
  ASSERT_NE(before, nullptr);

  nn::Sequential fragile = margin_model();
  const std::uint64_t canary_version =
      router.publish_canary(fragile, "mlp_small", 1);
  EXPECT_GT(canary_version, before->version);
  ASSERT_EQ(router.state(1), ShardState::kCanary);

  // The alarm arms only once the window has looked healthy
  // (min_baseline), so model a canary that starts fine and then
  // collapses: hot-swap the canary shard's registry mid-window. The
  // rollback target was pinned at publish_canary time — these swaps do
  // not move it.
  nn::Sequential good = zero_model();
  router.registry(1).publish("m", good, "mlp_small");
  probe_n(router, 1, 4);  // survivors fill the window: best-seen 1.0
  router.tick();
  ASSERT_EQ(router.state(1), ShardState::kCanary);  // clean -> no action

  nn::Sequential bad = margin_model();
  router.registry(1).publish("m", bad, "mlp_small");
  probe_n(router, 1, 4);  // failures displace the window -> alarm
  ASSERT_TRUE(router.shard(1).monitor()->alarmed());

  router.tick();
  EXPECT_EQ(router.state(1), ShardState::kServing);
  const SnapshotPtr after = router.registry(1).current("m");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->payload, before->payload);  // bit-identical weights
  EXPECT_GT(after->version, canary_version);   // but a fresh version

  // The shard's own registry history and the audit log agree.
  bool saw_rollback = false;
  for (const RolloutEvent& ev : router.history()) {
    if (ev.action == "rollback" && ev.shard == 1) saw_rollback = true;
  }
  EXPECT_TRUE(saw_rollback);
  // The healthy shard was never disturbed.
  EXPECT_EQ(router.state(0), ShardState::kServing);
  EXPECT_EQ(router.registry(0).current("m")->payload, before->payload);
}

TEST(ShardRouter, CanaryPromotesAfterCleanWindowAndSoak) {
  RouterConfig cfg = two_shards();
  cfg.promote_after_probes = 4;
  cfg.min_soak = 10.0;
  FakeClock clock;
  ShardRouter router(cfg, clock);
  nn::Sequential base = zero_model();
  router.publish(base, "mlp_small");
  const std::uint64_t v0 = router.registry(0).current("m")->version;

  nn::Sequential staged = zero_model();  // robust: probes survive
  router.publish_canary(staged, "mlp_small", 0);
  const SnapshotPtr canary_snap = router.registry(0).current("m");

  probe_n(router, 0, 4);
  router.tick();
  // Clean probes but no soak time yet: still a canary.
  EXPECT_EQ(router.state(0), ShardState::kCanary);

  clock.advance(11.0);
  router.tick();
  EXPECT_EQ(router.state(0), ShardState::kServing);
  // The other shard received the canary's exact payload.
  const SnapshotPtr other = router.registry(1).current("m");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->payload, canary_snap->payload);
  EXPECT_GT(other->version, v0);
  bool saw_promote = false;
  for (const RolloutEvent& ev : router.history()) {
    if (ev.action == "promote" && ev.shard == 0) saw_promote = true;
  }
  EXPECT_TRUE(saw_promote);
}

TEST(ShardRouter, ServingShardAlarmEjectsAndReinstateRestores) {
  FakeClock clock;
  ShardRouter router(two_shards(), clock);
  nn::Sequential robust = zero_model();
  router.publish(robust, "mlp_small");

  // Shard 0 drifts on its own (no rollout in flight): arm, collapse.
  probe_n(router, 0, 4);
  nn::Sequential bad = margin_model();
  router.registry(0).publish("m", bad, "mlp_small");
  probe_n(router, 0, 4);
  ASSERT_TRUE(router.shard(0).monitor()->alarmed());

  router.tick();
  EXPECT_EQ(router.state(0), ShardState::kEjected);
  // Routing excludes the ejected shard entirely.
  for (std::uint64_t key = 1; key <= 64; ++key) {
    EXPECT_EQ(router.route(key), 1u);
  }

  EXPECT_TRUE(router.reinstate(0));
  EXPECT_EQ(router.state(0), ShardState::kServing);
  EXPECT_FALSE(router.shard(0).monitor()->alarmed());  // window reset
  EXPECT_FALSE(router.reinstate(0));  // already serving
}

TEST(ShardRouter, DrainingShardTakesNoNewTraffic) {
  FakeClock clock;
  ShardRouter router(two_shards(), clock);
  EXPECT_TRUE(router.set_draining(1));
  for (std::uint64_t key = 1; key <= 32; ++key) {
    EXPECT_EQ(router.route(key), 0u);
  }
  EXPECT_TRUE(router.reinstate(1));
  EXPECT_EQ(router.state(1), ShardState::kServing);
}

TEST(ShardRouter, AllShardsUnroutableDegradesInsteadOfRejecting) {
  FakeClock clock;
  ShardRouter router(two_shards(), clock);
  router.set_draining(0);
  router.set_draining(1);
  // Degraded mode still routes (availability over purity).
  std::set<std::size_t> hit;
  for (std::uint64_t key = 1; key <= 64; ++key) hit.insert(router.route(key));
  EXPECT_FALSE(hit.empty());
}

TEST(ShardRouter, JournalRecordsDecisionsAsJsonLines) {
  const std::string path = testing::TempDir() + "router_journal.jsonl";
  std::remove(path.c_str());
  {
    RouterConfig cfg = two_shards();
    cfg.journal_path = path;
    FakeClock clock;
    ShardRouter router(cfg, clock);
    nn::Sequential base = zero_model();
    router.publish(base, "mlp_small");
    nn::Sequential staged = zero_model();
    router.publish_canary(staged, "mlp_small", 1);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"action\":\"publish\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"action\":\"canary\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"shard\":1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ShardRouter, ThreadedRollbackDrillLeavesHealthyTrafficUntouched) {
  // End to end with real worker threads: a fragile canary is staged,
  // convicted and rolled back while requests keep flowing — and every
  // response from the healthy routing set stays kNone.
  RouterConfig cfg = two_shards();
  cfg.server.workers = 1;
  cfg.canary_fraction = 0.0;  // judge the canary on probes, not traffic
  ShardRouter router(cfg);    // SystemClock: real threads need real time
  nn::Sequential robust = zero_model();
  router.publish(robust, "mlp_small");
  router.start();

  const Tensor img = uniform_image();
  auto serve_burst = [&](std::size_t n) {
    std::size_t ok = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Response r = router.submit(img, 0.0, /*key=*/i + 1).wait();
      if (r.error == ServeError::kNone) ++ok;
    }
    return ok;
  };
  EXPECT_EQ(serve_burst(8), 8u);

  // Stage the canary, then feed its monitor through the serving-path
  // hook and let the monitor WORKER thread do the probing (manual
  // step() would race it). The canary looks healthy first, then
  // collapses — the sequencing is enforced by waiting for the probe
  // count between swaps.
  RobustnessMonitor* mon = router.shard(1).monitor();
  ASSERT_NE(mon, nullptr);
  auto feed_and_await = [&](std::size_t n) {
    const std::size_t target = mon->report().probed + n;
    for (std::size_t i = 0; i < n; ++i) mon->observe(img, 0);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (mon->report().probed < target) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "monitor worker stalled";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  nn::Sequential fragile = margin_model();
  router.publish_canary(fragile, "mlp_small", 1);
  nn::Sequential good = zero_model();
  router.registry(1).publish("m", good, "mlp_small");
  feed_and_await(4);  // healthy window: best-seen 1.0
  nn::Sequential bad = margin_model();
  router.registry(1).publish("m", bad, "mlp_small");
  feed_and_await(4);  // collapse -> alarm
  ASSERT_TRUE(mon->alarmed());
  router.tick();
  EXPECT_EQ(router.state(1), ShardState::kServing);  // rolled back

  // Healthy traffic continued and continues: zero client-visible errors.
  EXPECT_EQ(serve_burst(8), 8u);
  router.drain();
}

}  // namespace
}  // namespace satd::serve
