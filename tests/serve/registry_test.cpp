#include "serve/registry.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/contract.h"
#include "common/rng.h"
#include "nn/model_io.h"
#include "nn/zoo.h"

namespace satd::serve {
namespace {

namespace fs = std::filesystem;

Tensor probe_batch() {
  Tensor x(Shape{3, 1, 28, 28});
  Rng rng(5);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform());
  return x;
}

TEST(Registry, PublishAssignsIncreasingVersionsPerName) {
  ModelRegistry registry;
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  EXPECT_EQ(registry.publish("a", m, "mlp_small"), 1u);
  EXPECT_EQ(registry.publish("a", m, "mlp_small"), 2u);
  EXPECT_EQ(registry.publish("b", m, "mlp_small"), 1u);
  EXPECT_EQ(registry.current("a")->version, 2u);
  EXPECT_EQ(registry.current("b")->version, 1u);
}

TEST(Registry, CurrentIsNullForUnknownName) {
  ModelRegistry registry;
  EXPECT_EQ(registry.current("nope"), nullptr);
}

TEST(Registry, UnknownSpecIsRejected) {
  ModelRegistry registry;
  Rng rng(2);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  EXPECT_THROW(registry.publish("a", m, "not_a_spec"), ContractViolation);
}

TEST(Registry, InstantiateIsBitIdenticalToThePublishedModel) {
  ModelRegistry registry;
  Rng rng(3);
  nn::Sequential m = nn::zoo::build("cnn_small", rng);
  registry.publish("m", m, "cnn_small");

  nn::Sequential replica = ModelRegistry::instantiate(*registry.current("m"));
  const Tensor x = probe_batch();
  EXPECT_TRUE(m.forward(x, false).equals(replica.forward(x, false)));
}

TEST(Registry, InstantiateRestoresBatchNormState) {
  // Serving a cnn_bn checkpoint must reproduce the trained running
  // statistics, not the init defaults — the case format v2 exists for.
  ModelRegistry registry;
  Rng rng(4);
  nn::Sequential m = nn::zoo::build("cnn_bn", rng);
  const Tensor x = probe_batch();
  (void)m.forward(x, /*training=*/true);  // move the running stats
  registry.publish("bn", m, "cnn_bn");

  nn::Sequential replica =
      ModelRegistry::instantiate(*registry.current("bn"));
  EXPECT_TRUE(m.forward(x, false).equals(replica.forward(x, false)));
}

TEST(Registry, PublishFileLoadsACheckpoint) {
  const fs::path dir = fs::temp_directory_path() / "satd_registry_test";
  fs::create_directories(dir);
  const std::string path = (dir / "m.bin").string();
  Rng rng(6);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  nn::save_model_file(path, m, "mlp_small");

  ModelRegistry registry;
  EXPECT_EQ(registry.publish_file("disk", path), 1u);
  EXPECT_EQ(registry.current("disk")->spec, "mlp_small");
  nn::Sequential replica =
      ModelRegistry::instantiate(*registry.current("disk"));
  const Tensor x = probe_batch();
  EXPECT_TRUE(m.forward(x, false).equals(replica.forward(x, false)));
  fs::remove_all(dir);
}

TEST(Registry, OldSnapshotSurvivesHotSwap) {
  // A worker holding the old snapshot (shared_ptr) must be able to keep
  // serving it after a publish replaces the current version.
  ModelRegistry registry;
  Rng rng1(7), rng2(8);
  nn::Sequential v1 = nn::zoo::build("mlp_small", rng1);
  nn::Sequential v2 = nn::zoo::build("mlp_small", rng2);
  registry.publish("m", v1, "mlp_small");
  SnapshotPtr held = registry.current("m");
  registry.publish("m", v2, "mlp_small");

  EXPECT_EQ(held->version, 1u);
  EXPECT_EQ(registry.current("m")->version, 2u);
  nn::Sequential replica = ModelRegistry::instantiate(*held);
  const Tensor x = probe_batch();
  EXPECT_TRUE(v1.forward(x, false).equals(replica.forward(x, false)));
}

TEST(Registry, WithdrawRemovesTheName) {
  ModelRegistry registry;
  Rng rng(9);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  registry.publish("m", m, "mlp_small");
  registry.withdraw("m");
  EXPECT_EQ(registry.current("m"), nullptr);
  EXPECT_TRUE(registry.names().empty());
}

}  // namespace
}  // namespace satd::serve
