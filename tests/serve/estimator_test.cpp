// The adaptive policy's two online models: EWMA arrival gaps (with the
// staleness guard) and the per-batch-size service-time curve (with
// interpolation, goodput planning and reset-on-hot-swap). Everything here
// is exact arithmetic — the estimators are deterministic functions of
// their observation sequence.
#include "serve/estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace satd::serve {
namespace {

TEST(ArrivalEstimator, NoDataPredictsInfinity) {
  ArrivalEstimator a;
  EXPECT_TRUE(std::isinf(a.expected_gap()));
  EXPECT_TRUE(std::isinf(a.expected_wait(123.0)));
  a.observe_arrival(1.0);  // one arrival: still no gap
  EXPECT_TRUE(std::isinf(a.expected_gap()));
}

TEST(ArrivalEstimator, GapIsExactEwma) {
  // Power-of-two times so the gap subtraction and EWMA are exact.
  ArrivalEstimator a(/*alpha=*/0.5);
  a.observe_arrival(10.0);
  a.observe_arrival(10.5);  // first gap seeds the EWMA: 0.5
  EXPECT_DOUBLE_EQ(a.expected_gap(), 0.5);
  a.observe_arrival(10.75);  // 0.5*0.5 + 0.5*0.25
  EXPECT_DOUBLE_EQ(a.expected_gap(), 0.375);
}

TEST(ArrivalEstimator, ExpectedWaitAgesWithSilence) {
  ArrivalEstimator a;
  a.observe_arrival(10.0);
  a.observe_arrival(10.25);  // gap 0.25, last arrival 10.25
  // Within one gap of the last arrival the EWMA speaks.
  EXPECT_DOUBLE_EQ(a.expected_wait(10.375), 0.25);
  // After a longer silence the silence itself is the better predictor.
  EXPECT_DOUBLE_EQ(a.expected_wait(10.75), 0.5);
}

TEST(ArrivalEstimator, ResetForgetsEverything) {
  ArrivalEstimator a;
  a.observe_arrival(1.0);
  a.observe_arrival(2.0);
  a.reset();
  EXPECT_TRUE(std::isinf(a.expected_gap()));
}

TEST(ServiceTimeEstimator, ObservedSizesAreExactEwma) {
  ServiceTimeEstimator s(/*max_batch=*/8, /*alpha=*/0.5);
  s.observe(1, 2, 0.004);
  EXPECT_DOUBLE_EQ(s.predict(2), 0.004);
  s.observe(1, 2, 0.008);  // 0.5*0.004 + 0.5*0.008
  EXPECT_DOUBLE_EQ(s.predict(2), 0.006);
  EXPECT_EQ(s.version(), 1u);
}

TEST(ServiceTimeEstimator, UnobservedPredictsZeroUntilData) {
  ServiceTimeEstimator s(8);
  for (std::size_t b = 1; b <= 8; ++b) EXPECT_DOUBLE_EQ(s.predict(b), 0.0);
}

TEST(ServiceTimeEstimator, InterpolatesBetweenObservedNeighbours) {
  ServiceTimeEstimator s(8);
  s.observe(1, 2, 0.002);
  s.observe(1, 6, 0.006);
  EXPECT_DOUBLE_EQ(s.predict(4), 0.004);  // midpoint
  EXPECT_DOUBLE_EQ(s.predict(3), 0.003);
}

TEST(ServiceTimeEstimator, ExtrapolatesAboveWithTopTwoSlope) {
  ServiceTimeEstimator s(8);
  s.observe(1, 2, 0.004);
  s.observe(1, 4, 0.005);  // slope 0.0005/request — measured sublinearity
  EXPECT_DOUBLE_EQ(s.predict(6), 0.006);
  // A single observation extrapolates proportionally (linear guess).
  ServiceTimeEstimator one(8);
  one.observe(1, 2, 0.004);
  EXPECT_DOUBLE_EQ(one.predict(4), 0.008);
}

TEST(ServiceTimeEstimator, ScalesDownBelowSmallestObservation) {
  ServiceTimeEstimator s(8);
  s.observe(1, 4, 0.008);
  EXPECT_DOUBLE_EQ(s.predict(2), 0.004);
}

TEST(ServiceTimeEstimator, VersionChangeResetsTheCurve) {
  ServiceTimeEstimator s(8);
  s.observe(1, 2, 0.004);
  EXPECT_DOUBLE_EQ(s.predict(2), 0.004);
  s.observe(2, 3, 0.001);  // hot swap: v2 data wipes the v1 curve
  EXPECT_EQ(s.version(), 2u);
  EXPECT_DOUBLE_EQ(s.predict(3), 0.001);
  EXPECT_DOUBLE_EQ(s.predict(2), 0.001 * 2.0 / 3.0);  // only v2 data left
}

TEST(ServiceTimeEstimator, PlannedBatchMaximizesGoodput) {
  ServiceTimeEstimator s(8);
  // Strongly sublinear cost: batching wins when arrivals are fast.
  s.observe(1, 1, 0.004);
  s.observe(1, 8, 0.008);  // interpolation fills 2..7
  // Fast arrivals (0.1 ms gap): goodput at b=8 is 8/(7*0.0001+0.008)
  // ≈ 920/s vs 250/s at b=1 — plan the full batch.
  EXPECT_EQ(s.planned_batch(0.0001, /*max_wait=*/0.01), 8u);
  // Slow arrivals (20 ms gap): every extra slot costs 20 ms of window —
  // nothing beats serving immediately.
  EXPECT_EQ(s.planned_batch(0.02, 0.01), 1u);
  // No arrival data: plan 1.
  EXPECT_EQ(s.planned_batch(std::numeric_limits<double>::infinity(), 0.01),
            1u);
}

TEST(ServiceTimeEstimator, PlannedBatchIsOneWithoutServiceData) {
  ServiceTimeEstimator s(8);
  EXPECT_EQ(s.planned_batch(0.0001, 0.01), 1u);
  EXPECT_DOUBLE_EQ(s.expected_delay(0.0001, 0.01), 0.0);
}

TEST(ServiceTimeEstimator, ExpectedDelayIsWindowPlusService) {
  ServiceTimeEstimator s(8);
  s.observe(1, 1, 0.004);
  s.observe(1, 8, 0.008);
  const double gap = 0.0001;
  // Plan is b=8 (see PlannedBatchMaximizesGoodput): 7 gaps of window
  // plus the predicted batch-of-8 service time.
  EXPECT_DOUBLE_EQ(s.expected_delay(gap, 0.01), 7.0 * gap + 0.008);
  // With no arrival data the plan is b=1: no window, just service.
  EXPECT_DOUBLE_EQ(
      s.expected_delay(std::numeric_limits<double>::infinity(), 0.01),
      0.004);
}

TEST(ServiceTimeEstimator, ResetRetagsAndClears) {
  ServiceTimeEstimator s(4);
  s.observe(3, 2, 0.004);
  s.reset(7);
  EXPECT_EQ(s.version(), 7u);
  EXPECT_DOUBLE_EQ(s.predict(2), 0.0);
}

}  // namespace
}  // namespace satd::serve
