// The SLO-aware adaptive batching policy, pinned exactly on a FakeClock:
// every window-close decision reads only the injected clock and the
// deterministic estimators, so scripted arrival patterns (burst, trickle,
// bimodal mid-window arrivals) must produce exact sleep counts and batch
// compositions. Also: priority-lane preemption, deadline pressure,
// estimator reset through a hot swap, and the bit-identity contract
// re-pinned under the adaptive policy (single-threaded and at 1/2/4
// workers).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/loss.h"
#include "nn/zoo.h"
#include "serve/estimator.h"
#include "serve/microbatcher.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace satd::serve {
namespace {

/// Everything one single-threaded adaptive batching test needs, on a
/// FakeClock starting at t = 10.0. Arrival/service estimators are
/// exposed so tests script the load model exactly; the FakeClock forward
/// pass takes zero time, so service curves are seeded by hand.
struct AdaptiveHarness {
  explicit AdaptiveHarness(BatchPolicy policy, QueueConfig qcfg = {})
      : queue(qcfg, stats, clock),
        service(policy.max_batch),
        batcher(registry, "m", queue, stats, clock, policy,
                /*monitor=*/nullptr, &arrivals, &service) {}

  ModelRegistry registry;
  FakeClock clock{10.0};
  ServerStats stats;
  RequestQueue queue;
  ArrivalEstimator arrivals;
  ServiceTimeEstimator service;
  Microbatcher batcher;
};

/// max_batch 4, hard cap 10 ms, 1 ms poll quanta, adaptive.
BatchPolicy adaptive_policy(std::size_t max_batch = 4) {
  BatchPolicy p;
  p.max_batch = max_batch;
  p.max_wait = 0.01;
  p.poll_interval = 0.001;
  p.adaptive = true;
  return p;
}

Tensor test_images(std::size_t n) {
  data::SyntheticConfig cfg;
  cfg.train_size = n;
  cfg.test_size = 1;
  return data::make_synthetic_digits(cfg).train.images;
}

void publish(ModelRegistry& registry, std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  registry.publish("m", m, "mlp_small");
}

/// Seeds the canonical scripted load model: 1 ms arrival gap (last
/// arrival at t = 10.0) and a sublinear measured service curve
/// s(1) = 4 ms, s(2) = 5 ms on model version 1.
void seed_fast_arrivals_sublinear_service(AdaptiveHarness& h) {
  h.arrivals.observe_arrival(9.999);
  h.arrivals.observe_arrival(10.0);
  h.service.observe(1, 1, 0.004);
  h.service.observe(1, 2, 0.005);
}

TEST(Adaptive, TrickleClosesImmediatelyInsteadOfWaitingOutTheWindow) {
  // The baseline inversion: under a 50 ms arrival gap the static window
  // waits out all of max_wait for nobody. The adaptive window predicts
  // the next arrival beyond the cap and serves the lone request with
  // ZERO sleeps.
  AdaptiveHarness h(adaptive_policy());
  publish(h.registry, 1);
  h.arrivals.observe_arrival(9.95);
  h.arrivals.observe_arrival(10.0);  // gap 50 ms >> max_wait 10 ms
  h.service.observe(1, 1, 0.004);
  h.service.observe(1, 2, 0.005);

  Ticket t = h.queue.submit(test_images(1).slice_row(0));
  ASSERT_TRUE(h.batcher.step());
  EXPECT_TRUE(h.clock.sleeps().empty());
  EXPECT_EQ(t.wait().batch_size, 1u);
}

TEST(Adaptive, NoArrivalDataNeverWaits) {
  AdaptiveHarness h(adaptive_policy());
  publish(h.registry, 1);
  h.service.observe(1, 1, 0.004);
  h.service.observe(1, 2, 0.005);
  Ticket t = h.queue.submit(test_images(1).slice_row(0));
  ASSERT_TRUE(h.batcher.step());
  EXPECT_TRUE(h.clock.sleeps().empty());
  EXPECT_EQ(t.wait().batch_size, 1u);
}

TEST(Adaptive, NoServiceModelNeverWaits) {
  // An unmeasured model must not be speculated about: even with fast
  // arrivals the window closes immediately until a cost curve exists.
  AdaptiveHarness h(adaptive_policy());
  publish(h.registry, 1);
  h.arrivals.observe_arrival(9.999);
  h.arrivals.observe_arrival(10.0);
  Ticket t = h.queue.submit(test_images(1).slice_row(0));
  ASSERT_TRUE(h.batcher.step());
  EXPECT_TRUE(h.clock.sleeps().empty());
  EXPECT_EQ(t.wait().batch_size, 1u);
}

TEST(Adaptive, BurstFillsTheBatchWithoutSleeping) {
  AdaptiveHarness h(adaptive_policy(/*max_batch=*/4));
  publish(h.registry, 1);
  const Tensor images = test_images(6);
  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < 6; ++i) {
    tickets.push_back(h.queue.submit(images.slice_row(i)));
  }
  ASSERT_TRUE(h.batcher.step());
  EXPECT_TRUE(h.clock.sleeps().empty());  // filled instantly from backlog
  EXPECT_EQ(tickets[0].wait().batch_size, 4u);
  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(tickets[4].wait().batch_size, 2u);
}

TEST(Adaptive, WaitsExactlyWhileGoodputIsPredictedToImprove) {
  // Bimodal script: request A arrives alone; B arrives one poll quantum
  // later (injected from the FakeClock sleep hook). With s(1)=4 ms,
  // s(2)=5 ms and a 1 ms gap the goodput rule says waiting for B pays
  // ((b+1)·s(b) > b·(w+s(b+1))); after B the extrapolated s(3)=6 ms
  // keeps the window open until the aged arrival estimate (no third
  // request comes) tips the rule at w = 2 ms. Exact trace: sleeps at
  // t=10.000, 10.001, 10.002, close at 10.003, serve {A,B}.
  AdaptiveHarness h(adaptive_policy());
  publish(h.registry, 1);
  seed_fast_arrivals_sublinear_service(h);

  const Tensor images = test_images(2);
  Ticket a = h.queue.submit(images.slice_row(0));
  Ticket b;
  h.clock.set_on_sleep([&](double now) {
    if (now == 10.001) {
      b = h.queue.submit(images.slice_row(1));
      h.arrivals.observe_arrival(now);
    }
  });

  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(h.clock.sleeps().size(), 3u);
  EXPECT_EQ(a.wait().batch_size, 2u);
  EXPECT_EQ(b.wait().batch_size, 2u);
  EXPECT_EQ(h.stats.snapshot().batches, 1u);
}

TEST(Adaptive, UrgentRequestPreemptsWindowForming) {
  // Same load model as above — the window would hold for 3 quanta — but
  // the mid-window arrival carries a deadline inside urgent_slack. It
  // lands in the priority lane and ends window forming the moment it is
  // staged: exactly one sleep, then both are served together, in time.
  QueueConfig qcfg;
  qcfg.urgent_slack = 0.005;
  AdaptiveHarness h(adaptive_policy(), qcfg);
  publish(h.registry, 1);
  seed_fast_arrivals_sublinear_service(h);

  const Tensor images = test_images(2);
  Ticket a = h.queue.submit(images.slice_row(0));
  Ticket b;
  h.clock.set_on_sleep([&](double now) {
    if (now == 10.001) {
      b = h.queue.submit(images.slice_row(1), /*deadline=*/10.003);
      h.arrivals.observe_arrival(now);
    }
  });

  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(h.clock.sleeps().size(), 1u);  // preempted, not goodput-closed
  Response rb = b.wait();
  EXPECT_EQ(rb.error, ServeError::kNone);  // served, not expired
  EXPECT_EQ(rb.batch_size, 2u);
  EXPECT_EQ(a.wait().batch_size, 2u);
}

TEST(Adaptive, DeadlinePressureClosesBeforeAStagedDeadlineBusts) {
  // A staged request with deadline t=10.0055: with s(1)=4 ms, another
  // poll quantum would leave 10.001+0.001+0.004 > 10.0055 — the goodput
  // rule alone would keep waiting (the arrival model still promises a
  // neighbour), but deadline pressure closes after exactly one sleep and
  // the request is served alive. (The deadline sits half a quantum off
  // the tipping point so the comparison has a real margin, not 1 ulp.)
  AdaptiveHarness h(adaptive_policy());
  publish(h.registry, 1);
  seed_fast_arrivals_sublinear_service(h);

  Ticket t = h.queue.submit(test_images(1).slice_row(0),
                            /*deadline=*/10.0055);
  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(h.clock.sleeps().size(), 1u);
  Response r = t.wait();
  EXPECT_EQ(r.error, ServeError::kNone);
  EXPECT_EQ(r.batch_size, 1u);
  EXPECT_EQ(h.stats.snapshot().deadline_misses, 0u);
}

TEST(Adaptive, ServiceCurveResetsOnHotSwap) {
  // The v1 cost curve must not outlive v1: serving one batch on v2
  // discards it (a new checkpoint has a new cost curve) and re-tags the
  // estimator with the new version.
  AdaptiveHarness h(adaptive_policy());
  publish(h.registry, 1);
  publish(h.registry, 2);  // hot swap to version 2 before any serving
  h.service.observe(1, 1, 0.004);  // stale v1 curve
  ASSERT_DOUBLE_EQ(h.service.predict(1), 0.004);

  Ticket t = h.queue.submit(test_images(1).slice_row(0));
  ASSERT_TRUE(h.batcher.step());
  EXPECT_EQ(t.wait().model_version, 2u);
  EXPECT_EQ(h.service.version(), 2u);
  // Only v2 data remains (the FakeClock batch measured 0 seconds).
  EXPECT_DOUBLE_EQ(h.service.predict(1), 0.0);
  EXPECT_DOUBLE_EQ(h.service.predict(4), 0.0);
}

TEST(Adaptive, BatchedIsBitIdenticalToBatchOfOne) {
  // The bit-identity contract survives the adaptive policy: a burst
  // coalesced adaptively must equal the same six images served alone.
  const Tensor images = test_images(6);

  AdaptiveHarness batched(adaptive_policy(/*max_batch=*/8));
  publish(batched.registry, 3);
  std::vector<Ticket> tb;
  for (std::size_t i = 0; i < 6; ++i) {
    tb.push_back(batched.queue.submit(images.slice_row(i)));
  }
  ASSERT_TRUE(batched.batcher.step());

  AdaptiveHarness single(adaptive_policy(/*max_batch=*/1));
  publish(single.registry, 3);  // same seed -> same published model
  std::vector<Ticket> ts;
  for (std::size_t i = 0; i < 6; ++i) {
    ts.push_back(single.queue.submit(images.slice_row(i)));
  }
  for (std::size_t i = 0; i < 6; ++i) ASSERT_TRUE(single.batcher.step());

  for (std::size_t i = 0; i < 6; ++i) {
    Response rb = tb[i].wait();
    Response rs = ts[i].wait();
    ASSERT_EQ(rb.error, ServeError::kNone);
    ASSERT_EQ(rs.error, ServeError::kNone);
    EXPECT_EQ(rb.batch_size, 6u);
    EXPECT_EQ(rs.batch_size, 1u);
    EXPECT_EQ(rb.predicted, rs.predicted);
    ASSERT_EQ(rb.probabilities.size(), rs.probabilities.size());
    for (std::size_t k = 0; k < rb.probabilities.size(); ++k) {
      EXPECT_EQ(rb.probabilities[k], rs.probabilities[k])
          << "image " << i << " class " << k;
    }
  }
}

TEST(Adaptive, ServerBitIdenticalAtOneTwoFourWorkers) {
  // End-to-end (real clock, real threads): the adaptive server at 1/2/4
  // workers serves every request bit-identical to a lone forward pass,
  // exactly like the static server test — the policy only reshapes batch
  // composition, never answers.
  data::SyntheticConfig dcfg;
  dcfg.train_size = 8;
  dcfg.test_size = 1;
  const Tensor pool = data::make_synthetic_digits(dcfg).train.images;

  ModelRegistry registry;
  publish(registry, 42);
  nn::Sequential replica =
      ModelRegistry::instantiate(*registry.current("m"));
  std::vector<std::vector<float>> expected(pool.shape()[0]);
  Tensor one(Shape{1, 1, 28, 28});
  for (std::size_t i = 0; i < pool.shape()[0]; ++i) {
    one.set_row(0, pool.slice_row(i));
    const Tensor probs = nn::softmax(replica.forward(one, false));
    expected[i].assign(probs.raw(), probs.raw() + probs.numel());
  }

  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ServerConfig cfg;
    cfg.model_name = "m";
    cfg.workers = workers;
    cfg.batch.max_batch = 4;
    cfg.batch.max_wait = 0.001;
    cfg.batch.adaptive = true;
    Server server(registry, cfg);
    server.start();

    const std::size_t per_client = 24;
    std::vector<std::thread> clients;
    std::atomic<std::size_t> mismatches{0};
    for (std::size_t c = 0; c < 3; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(100 + c);
        for (std::size_t i = 0; i < per_client; ++i) {
          const std::size_t idx = rng.uniform_index(pool.shape()[0]);
          Response r = server.submit(pool.slice_row(idx)).wait();
          if (r.error != ServeError::kNone ||
              r.probabilities != expected[idx]) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    server.drain();
    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(server.stats().snapshot().served, 3 * per_client);
  }
}

}  // namespace
}  // namespace satd::serve
