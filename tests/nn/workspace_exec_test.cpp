// Tests for the allocation-free `_into` execution path: bit-identity
// with the value-returning wrappers, steady-state pointer stability,
// shape-change reuse, the cache-validity contract, and a
// finite-difference check routed through forward_into/backward_into.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contract.h"
#include "common/rng.h"
#include "nn/loss.h"
#include "nn/sequential.h"
#include "nn/zoo.h"

namespace satd::nn {
namespace {

Tensor random_images(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{n, zoo::kImageChannels, zoo::kImageSize, zoo::kImageSize});
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(0, 1));
  return x;
}

std::vector<std::size_t> cyclic_labels(std::size_t n) {
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % zoo::kNumClasses;
  return labels;
}

class IntoPathZooTest : public ::testing::TestWithParam<std::string> {};

// The value-returning wrappers and the `_into` path must produce
// byte-identical floats: same kernels, same accumulation order, only the
// destination storage differs.
TEST_P(IntoPathZooTest, ForwardBackwardBitIdenticalToValuePath) {
  Rng rng1(11), rng2(11);
  Sequential value_model = zoo::build(GetParam(), rng1);
  Sequential into_model = zoo::build(GetParam(), rng2);
  const Tensor x = random_images(3, 21);

  const Tensor logits_value = value_model.forward(x, /*training=*/true);
  Tensor logits_into;
  into_model.forward_into(x, logits_into, /*training=*/true);
  ASSERT_EQ(logits_value.shape(), logits_into.shape());
  EXPECT_TRUE(logits_value.equals(logits_into));

  Rng grad_rng(31);
  Tensor g(logits_value.shape());
  for (float& v : g.data()) v = static_cast<float>(grad_rng.uniform(-1, 1));

  const Tensor gx_value = value_model.backward(g);
  Tensor gx_into;
  into_model.backward_into(g, gx_into);
  ASSERT_EQ(gx_value.shape(), gx_into.shape());
  EXPECT_TRUE(gx_value.equals(gx_into));

  const auto gv = value_model.gradients();
  const auto gi = into_model.gradients();
  ASSERT_EQ(gv.size(), gi.size());
  for (std::size_t i = 0; i < gv.size(); ++i) {
    EXPECT_TRUE(gv[i]->equals(*gi[i])) << "gradient tensor " << i;
  }
}

// Steady state is allocation-free: once buffers exist, repeated passes
// at the same shape must not move the output or input-gradient storage.
TEST_P(IntoPathZooTest, SteadyStatePointersAreStable) {
  Rng rng(12);
  Sequential model = zoo::build(GetParam(), rng);
  Tensor logits, gx, g;
  const Tensor warmup = random_images(4, 22);
  model.forward_into(warmup, logits, true);
  g = Tensor(logits.shape());
  g.fill(0.05f);
  model.backward_into(g, gx);
  model.zero_grad();

  const float* logits_ptr = logits.raw();
  const float* gx_ptr = gx.raw();
  for (int iter = 0; iter < 3; ++iter) {
    const Tensor x = random_images(4, 100 + static_cast<std::uint64_t>(iter));
    model.forward_into(x, logits, true);
    model.backward_into(g, gx);
    model.zero_grad();
    EXPECT_EQ(logits.raw(), logits_ptr) << "iteration " << iter;
    EXPECT_EQ(gx.raw(), gx_ptr) << "iteration " << iter;
  }
}

// Buffer reuse across a batch-size change must not leak state: a smaller
// batch run after a larger one matches a fresh model bit for bit.
TEST_P(IntoPathZooTest, ShapeChangeReuseMatchesFreshModel) {
  Rng rng1(13), rng2(13);
  Sequential warm = zoo::build(GetParam(), rng1);
  Sequential fresh = zoo::build(GetParam(), rng2);
  const Tensor big = random_images(5, 23);
  const Tensor small = random_images(2, 24);

  Tensor scratch, warm_out, fresh_out;
  warm.forward_into(big, scratch, true);
  Tensor g(scratch.shape());
  g.fill(0.1f);
  Tensor gx;
  warm.backward_into(g, gx);
  warm.zero_grad();

  warm.forward_into(small, warm_out, true);
  fresh.forward_into(small, fresh_out, true);
  EXPECT_TRUE(warm_out.equals(fresh_out));
}

TEST(IntoPathContract, BackwardBeforeForwardThrows) {
  Rng rng(14);
  Sequential model = zoo::build("mlp_small", rng);
  Tensor g(Shape{2, zoo::kNumClasses});
  g.fill(0.1f);
  Tensor gx;
  EXPECT_THROW(model.backward_into(g, gx), ContractViolation);
}

TEST(IntoPathContract, DoubleBackwardThrows) {
  Rng rng(15);
  Sequential model = zoo::build("mlp_small", rng);
  const Tensor x = random_images(2, 25);
  Tensor logits;
  model.forward_into(x, logits, true);
  Tensor g(logits.shape());
  g.fill(0.1f);
  Tensor gx;
  model.backward_into(g, gx);  // consumes the layer caches
  EXPECT_THROW(model.backward_into(g, gx), ContractViolation);
}

TEST(IntoPathContract, BackwardAfterReleaseBuffersThrows) {
  Rng rng(16);
  Sequential model = zoo::build("mlp_small", rng);
  const Tensor x = random_images(2, 26);
  Tensor logits;
  model.forward_into(x, logits, true);
  Tensor g(logits.shape());
  g.fill(0.1f);
  model.release_buffers();  // invalidates every cache
  Tensor gx;
  EXPECT_THROW(model.backward_into(g, gx), ContractViolation);
}

TEST(IntoPathContract, ReleaseBuffersThenForwardRecovers) {
  Rng rng(17);
  Sequential model = zoo::build("cnn_small", rng);
  const Tensor x = random_images(2, 27);
  Tensor a, b;
  model.forward_into(x, a, false);
  model.release_buffers();
  Tensor kept = a;  // `a` itself is caller storage, untouched by release
  model.forward_into(x, b, false);
  EXPECT_TRUE(kept.equals(b));
}

// Finite-difference check routed entirely through the `_into` path.
TEST(IntoPathGradcheck, InputGradientMatchesFiniteDifference) {
  Rng rng(18);
  Sequential model = zoo::build("mlp_small", rng);
  const Tensor x = random_images(2, 28);
  const auto labels = cyclic_labels(2);

  Tensor logits, gx;
  LossResult loss;
  model.zero_grad();
  model.forward_into(x, logits, true);
  softmax_cross_entropy_into(logits, labels, loss);
  model.backward_into(loss.grad_logits, gx);
  model.zero_grad();
  ASSERT_EQ(gx.shape(), x.shape());

  auto loss_at = [&](const Tensor& probe) {
    Tensor l;
    model.forward_into(probe, l, true);
    return softmax_cross_entropy_value(l, labels);
  };
  Tensor probe = x;
  const float h = 5e-3f;
  const std::size_t n = x.numel();
  const std::size_t step = std::max<std::size_t>(1, n / 16);
  for (std::size_t i = 0; i < n; i += step) {
    const float saved = probe[i];
    probe[i] = saved + h;
    const float up = loss_at(probe);
    probe[i] = saved - h;
    const float down = loss_at(probe);
    probe[i] = saved;
    const float numeric = (up - down) / (2.0f * h);
    EXPECT_NEAR(gx[i], numeric, 2e-2f * std::max(1.0f, std::fabs(gx[i])))
        << "input coordinate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, IntoPathZooTest,
                         ::testing::ValuesIn(zoo::known_specs()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace satd::nn
