#include "nn/sequential.h"

#include <gtest/gtest.h>

#include "common/contract.h"
#include "common/rng.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/flatten.h"

namespace satd::nn {
namespace {

Sequential make_mlp(Rng& rng) {
  Sequential m;
  m.emplace<Dense>(4, 8, rng);
  m.emplace<ReLU>();
  m.emplace<Dense>(8, 3, rng);
  return m;
}

TEST(Sequential, ForwardProducesLogits) {
  Rng rng(1);
  Sequential m = make_mlp(rng);
  Tensor x(Shape{5, 4});
  Tensor y = m.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{5, 3}));
}

TEST(Sequential, EmptyModelThrows) {
  Sequential m;
  Tensor x(Shape{1, 4});
  EXPECT_THROW(m.forward(x, false), ContractViolation);
  EXPECT_THROW(m.backward(x), ContractViolation);
  EXPECT_THROW(m.add(nullptr), ContractViolation);
}

TEST(Sequential, ParametersAndGradientsAlign) {
  Rng rng(2);
  Sequential m = make_mlp(rng);
  const auto params = m.parameters();
  const auto grads = m.gradients();
  ASSERT_EQ(params.size(), 4u);  // two Dense layers x (W, b)
  ASSERT_EQ(grads.size(), 4u);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->shape(), grads[i]->shape());
  }
  EXPECT_EQ(m.parameter_count(), 4u * 8 + 8 + 8u * 3 + 3);
}

TEST(Sequential, ZeroGradClearsEverything) {
  Rng rng(3);
  Sequential m = make_mlp(rng);
  Tensor x = Tensor::full(Shape{2, 4}, 0.5f);
  m.forward(x, true);
  Tensor g = Tensor::full(Shape{2, 3}, 1.0f);
  m.backward(g);
  bool any_nonzero = false;
  for (Tensor* grad : m.gradients()) {
    for (float v : grad->data()) {
      if (v != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  m.zero_grad();
  for (Tensor* grad : m.gradients()) {
    for (float v : grad->data()) EXPECT_EQ(v, 0.0f);
  }
}

TEST(Sequential, OutputShapeValidatesChain) {
  Rng rng(4);
  Sequential m = make_mlp(rng);
  EXPECT_EQ(m.output_shape(Shape{4}), (Shape{3}));
  EXPECT_THROW(m.output_shape(Shape{5}), ContractViolation);
}

TEST(Sequential, SummaryListsLayers) {
  Rng rng(5);
  Sequential m = make_mlp(rng);
  const std::string s = m.summary(Shape{4});
  EXPECT_NE(s.find("Dense(4->8)"), std::string::npos);
  EXPECT_NE(s.find("ReLU"), std::string::npos);
  EXPECT_NE(s.find("Dense(8->3)"), std::string::npos);
  EXPECT_NE(s.find("params="), std::string::npos);
}

TEST(Sequential, LayerAccessor) {
  Rng rng(6);
  Sequential m = make_mlp(rng);
  EXPECT_EQ(m.layer_count(), 3u);
  EXPECT_EQ(m.layer(1).name(), "ReLU");
  EXPECT_THROW(m.layer(3), ContractViolation);
}

TEST(Sequential, DeterministicGivenSeed) {
  Rng rng1(7), rng2(7);
  Sequential m1 = make_mlp(rng1);
  Sequential m2 = make_mlp(rng2);
  Tensor x = Tensor::full(Shape{2, 4}, 0.3f);
  EXPECT_TRUE(m1.forward(x, false).equals(m2.forward(x, false)));
}

}  // namespace
}  // namespace satd::nn
