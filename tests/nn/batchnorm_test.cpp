#include "nn/batchnorm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.h"
#include "common/rng.h"
#include "gradcheck.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/sequential.h"
#include "tensor/ops.h"

namespace satd::nn {
namespace {

Tensor random_batch(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(0.1, 0.9));
  return t;
}

TEST(BatchNorm, TrainingOutputIsNormalizedPerChannel) {
  Rng rng(1);
  BatchNorm2d bn(3);
  const Tensor x = random_batch(Shape{8, 3, 4, 4}, rng);
  const Tensor y = bn.forward(x, /*training=*/true);
  // gamma=1, beta=0 initially: each channel of y has mean ~0, var ~1.
  const std::size_t plane = 16;
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t j = 0; j < plane; ++j) {
        mean += y.raw()[(i * 3 + c) * plane + j];
      }
    }
    mean /= 8 * plane;
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t j = 0; j < plane; ++j) {
        const double d = y.raw()[(i * 3 + c) * plane + j] - mean;
        var += d * d;
      }
    }
    var /= 8 * plane;
    EXPECT_NEAR(mean, 0.0, 1e-4) << "channel " << c;
    EXPECT_NEAR(var, 1.0, 1e-2) << "channel " << c;
  }
}

TEST(BatchNorm, GammaBetaScaleAndShift) {
  Rng rng(2);
  BatchNorm2d bn(1);
  bn.gamma()[0] = 3.0f;
  bn.beta()[0] = -1.0f;
  const Tensor x = random_batch(Shape{4, 1, 3, 3}, rng);
  const Tensor y = bn.forward(x, true);
  EXPECT_NEAR(ops::mean(y), -1.0f, 1e-4f);
}

TEST(BatchNorm, RunningStatsConvergeToBatchStats) {
  Rng rng(3);
  BatchNorm2d bn(2, /*momentum=*/0.5f);
  const Tensor x = random_batch(Shape{16, 2, 4, 4}, rng);
  for (int i = 0; i < 20; ++i) bn.forward(x, true);
  // After many identical batches the EMA equals the batch stats.
  const std::size_t plane = 16;
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (std::size_t i = 0; i < 16; ++i) {
      for (std::size_t j = 0; j < plane; ++j) {
        mean += x.raw()[(i * 2 + c) * plane + j];
      }
    }
    mean /= 16 * plane;
    EXPECT_NEAR(bn.running_mean()[c], mean, 1e-3) << c;
  }
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  Rng rng(4);
  BatchNorm2d bn(1, 1.0f);  // momentum 1: running stats = last batch
  const Tensor x = random_batch(Shape{8, 1, 4, 4}, rng);
  bn.forward(x, true);
  // Inference on the SAME batch now normalizes with (biased) batch stats,
  // so the output should be near-normalized too.
  const Tensor y = bn.forward(x, false);
  EXPECT_NEAR(ops::mean(y), 0.0f, 1e-3f);
}

TEST(BatchNorm, InferenceIsPerExampleConsistent) {
  // Eval-mode output of one example must not depend on batch companions.
  Rng rng(5);
  BatchNorm2d bn(2);
  bn.forward(random_batch(Shape{8, 2, 4, 4}, rng), true);  // set stats
  const Tensor batch = random_batch(Shape{4, 2, 4, 4}, rng);
  const Tensor full = bn.forward(batch, false);
  Tensor one(Shape{1, 2, 4, 4});
  one.set_row(0, batch.slice_row(2));
  const Tensor single = bn.forward(one, false);
  EXPECT_TRUE(single.slice_row(0).allclose(full.slice_row(2), 1e-6f));
}

TEST(BatchNorm, TrainingGradcheckThroughBatchStats) {
  Rng rng(6);
  Sequential m;
  m.emplace<Conv2d>(1, 2, 3, 0, rng);  // [2, 6, 6]
  m.emplace<BatchNorm2d>(2);
  m.emplace<Tanh>();
  m.emplace<Flatten>();
  m.emplace<Dense>(72, 3, rng);
  const Tensor x = random_batch(Shape{3, 1, 8, 8}, rng);
  std::vector<std::size_t> labels{0, 1, 2};
  testing::check_parameter_gradients(m, x, labels);
  testing::check_input_gradients(m, x, labels);
}

TEST(BatchNorm, EvalModeBackwardIsLinearScaling) {
  Rng rng(7);
  BatchNorm2d bn(1);
  bn.forward(random_batch(Shape{8, 1, 2, 2}, rng), true);  // set stats
  bn.gamma()[0] = 2.0f;
  const Tensor x = random_batch(Shape{2, 1, 2, 2}, rng);
  bn.forward(x, false);
  Tensor g = Tensor::full(Shape{2, 1, 2, 2}, 1.0f);
  const Tensor gx = bn.backward(g);
  const float expected =
      2.0f / std::sqrt(bn.running_var()[0] + 1e-5f);
  for (float v : gx.data()) EXPECT_NEAR(v, expected, 1e-5f);
  bn.zero_grad();
}

TEST(BatchNorm, ValidatesArguments) {
  EXPECT_THROW(BatchNorm2d(0), ContractViolation);
  EXPECT_THROW(BatchNorm2d(2, 0.0f), ContractViolation);
  EXPECT_THROW(BatchNorm2d(2, 1.5f), ContractViolation);
  EXPECT_THROW(BatchNorm2d(2, 0.1f, 0.0f), ContractViolation);
  BatchNorm2d bn(2);
  Tensor wrong(Shape{2, 3, 4, 4});
  EXPECT_THROW(bn.forward(wrong, true), ContractViolation);
  Tensor g(Shape{2, 2, 4, 4});
  EXPECT_THROW(bn.backward(g), ContractViolation);  // before forward
}

TEST(BatchNorm, NameAndShapes) {
  BatchNorm2d bn(8);
  EXPECT_EQ(bn.name(), "BatchNorm2d(8)");
  EXPECT_EQ(bn.output_shape(Shape{8, 5, 5}), (Shape{8, 5, 5}));
  EXPECT_THROW(bn.output_shape(Shape{4, 5, 5}), ContractViolation);
  EXPECT_EQ(bn.parameters().size(), 2u);
}

}  // namespace
}  // namespace satd::nn
