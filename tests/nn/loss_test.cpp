#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace satd::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  Rng rng(1);
  Tensor logits(Shape{5, 10});
  for (float& v : logits.data()) v = static_cast<float>(rng.uniform(-5, 5));
  Tensor p = softmax(logits);
  for (std::size_t i = 0; i < 5; ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 10; ++j) {
      EXPECT_GT(p.at(i, j), 0.0f);
      sum += p.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Softmax, InvariantToRowShift) {
  Tensor a(Shape{1, 3}, {1, 2, 3});
  Tensor b(Shape{1, 3}, {101, 102, 103});
  EXPECT_TRUE(softmax(a).allclose(softmax(b), 1e-6f));
}

TEST(Softmax, StableForExtremeLogits) {
  Tensor a(Shape{1, 3}, {1000.0f, 0.0f, -1000.0f});
  Tensor p = softmax(a);
  EXPECT_NEAR(p[0], 1.0f, 1e-5f);
  EXPECT_NEAR(p[1], 0.0f, 1e-5f);
  EXPECT_FALSE(std::isnan(p[2]));
}

TEST(CrossEntropy, UniformLogitsGiveLogK) {
  Tensor logits(Shape{4, 10});
  std::vector<std::size_t> labels{0, 3, 7, 9};
  const LossResult res = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(res.value, std::log(10.0f), 1e-5f);
}

TEST(CrossEntropy, PerfectPredictionLossNearZero) {
  Tensor logits(Shape{2, 3});
  logits.at(0, 1) = 50.0f;
  logits.at(1, 2) = 50.0f;
  std::vector<std::size_t> labels{1, 2};
  const LossResult res = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(res.value, 0.0f, 1e-4f);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOnehotOverN) {
  Tensor logits(Shape{2, 3}, {1, 2, 3, 0, 0, 0});
  std::vector<std::size_t> labels{2, 0};
  const LossResult res = softmax_cross_entropy(logits, labels);
  const Tensor p = softmax(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const float expected =
          (p.at(i, j) - (labels[i] == j ? 1.0f : 0.0f)) / 2.0f;
      EXPECT_NEAR(res.grad_logits.at(i, j), expected, 1e-6f);
    }
  }
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  Rng rng(3);
  Tensor logits(Shape{6, 5});
  for (float& v : logits.data()) v = static_cast<float>(rng.uniform(-3, 3));
  std::vector<std::size_t> labels{0, 1, 2, 3, 4, 0};
  const LossResult res = softmax_cross_entropy(logits, labels);
  for (std::size_t i = 0; i < 6; ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 5; ++j) sum += res.grad_logits.at(i, j);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(5);
  Tensor logits(Shape{3, 4});
  for (float& v : logits.data()) v = static_cast<float>(rng.uniform(-2, 2));
  std::vector<std::size_t> labels{1, 0, 3};
  const LossResult res = softmax_cross_entropy(logits, labels);
  const float h = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor probe = logits;
    probe[i] += h;
    const float up = softmax_cross_entropy_value(probe, labels);
    probe[i] -= 2 * h;
    const float down = softmax_cross_entropy_value(probe, labels);
    EXPECT_NEAR(res.grad_logits[i], (up - down) / (2 * h), 1e-3f) << i;
  }
}

TEST(CrossEntropy, ValueMatchesGradVariant) {
  Rng rng(7);
  Tensor logits(Shape{8, 10});
  for (float& v : logits.data()) v = static_cast<float>(rng.uniform(-4, 4));
  std::vector<std::size_t> labels(8);
  for (auto& y : labels) y = rng.uniform_index(10);
  EXPECT_NEAR(softmax_cross_entropy(logits, labels).value,
              softmax_cross_entropy_value(logits, labels), 1e-5f);
}

TEST(CrossEntropy, InvalidInputsThrow) {
  Tensor logits(Shape{2, 3});
  std::vector<std::size_t> bad_count{0};
  EXPECT_THROW(softmax_cross_entropy(logits, bad_count), ContractViolation);
  std::vector<std::size_t> bad_label{0, 5};
  EXPECT_THROW(softmax_cross_entropy(logits, bad_label), ContractViolation);
}

TEST(SmoothedCrossEntropy, AlphaZeroMatchesPlainLoss) {
  Rng rng(11);
  Tensor logits(Shape{5, 6});
  for (float& v : logits.data()) v = static_cast<float>(rng.uniform(-3, 3));
  std::vector<std::size_t> labels{0, 1, 2, 3, 4};
  const LossResult plain = softmax_cross_entropy(logits, labels);
  const LossResult smoothed =
      softmax_cross_entropy_smoothed(logits, labels, 0.0f);
  EXPECT_NEAR(plain.value, smoothed.value, 1e-6f);
  EXPECT_TRUE(plain.grad_logits.allclose(smoothed.grad_logits, 1e-6f));
}

TEST(SmoothedCrossEntropy, PenalizesOverconfidence) {
  // A perfectly confident prediction has ~0 plain loss but positive
  // smoothed loss (mass is owed to the other classes).
  Tensor logits(Shape{1, 3});
  logits.at(0, 0) = 50.0f;
  std::vector<std::size_t> labels{0};
  EXPECT_NEAR(softmax_cross_entropy_value(logits, labels), 0.0f, 1e-4f);
  EXPECT_GT(softmax_cross_entropy_smoothed_value(logits, labels, 0.1f), 1.0f);
}

TEST(SmoothedCrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(13);
  Tensor logits(Shape{3, 4});
  for (float& v : logits.data()) v = static_cast<float>(rng.uniform(-2, 2));
  std::vector<std::size_t> labels{1, 0, 3};
  const float alpha = 0.2f;
  const LossResult res =
      softmax_cross_entropy_smoothed(logits, labels, alpha);
  const float h = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor probe = logits;
    probe[i] += h;
    const float up =
        softmax_cross_entropy_smoothed_value(probe, labels, alpha);
    probe[i] -= 2 * h;
    const float down =
        softmax_cross_entropy_smoothed_value(probe, labels, alpha);
    EXPECT_NEAR(res.grad_logits[i], (up - down) / (2 * h), 1e-3f) << i;
  }
}

TEST(SmoothedCrossEntropy, GradientRowsSumToZero) {
  Rng rng(15);
  Tensor logits(Shape{4, 5});
  for (float& v : logits.data()) v = static_cast<float>(rng.uniform(-3, 3));
  std::vector<std::size_t> labels{0, 1, 2, 3};
  const LossResult res =
      softmax_cross_entropy_smoothed(logits, labels, 0.3f);
  for (std::size_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 5; ++j) sum += res.grad_logits.at(i, j);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(SmoothedCrossEntropy, RejectsBadAlpha) {
  Tensor logits(Shape{1, 3});
  std::vector<std::size_t> labels{0};
  EXPECT_THROW(softmax_cross_entropy_smoothed(logits, labels, -0.1f),
               ContractViolation);
  EXPECT_THROW(softmax_cross_entropy_smoothed(logits, labels, 1.1f),
               ContractViolation);
}

TEST(Accuracy, CountsArgmaxMatches) {
  Tensor logits(Shape{3, 3}, {5, 1, 1, 1, 5, 1, 1, 1, 5});
  std::vector<std::size_t> labels{0, 1, 0};
  EXPECT_NEAR(accuracy(logits, labels), 2.0f / 3.0f, 1e-6f);
}

TEST(Accuracy, PerfectAndZero) {
  Tensor logits(Shape{2, 2}, {5, 0, 0, 5});
  std::vector<std::size_t> right{0, 1};
  std::vector<std::size_t> wrong{1, 0};
  EXPECT_FLOAT_EQ(accuracy(logits, right), 1.0f);
  EXPECT_FLOAT_EQ(accuracy(logits, wrong), 0.0f);
}

}  // namespace
}  // namespace satd::nn
