#include "nn/zoo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.h"

namespace satd::nn::zoo {
namespace {

TEST(Zoo, KnownSpecsAreEnumerated) {
  const auto specs = known_specs();
  EXPECT_GE(specs.size(), 4u);
  for (const auto& s : specs) EXPECT_TRUE(is_known_spec(s));
  EXPECT_FALSE(is_known_spec("resnet152"));
}

TEST(Zoo, UnknownSpecThrows) {
  Rng rng(1);
  EXPECT_THROW(build("resnet152", rng), ContractViolation);
}

class ZooSpecTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooSpecTest, AcceptsStandardImagesAndEmitsTenLogits) {
  Rng rng(42);
  Sequential m = build(GetParam(), rng);
  // Shape validation through the whole chain.
  EXPECT_EQ(m.output_shape(input_shape()), (Shape{kNumClasses}));
  // And an actual forward pass.
  Tensor x = Tensor::full(Shape{2, kImageChannels, kImageSize, kImageSize},
                          0.5f);
  Tensor logits = m.forward(x, false);
  EXPECT_EQ(logits.shape(), (Shape{2, kNumClasses}));
  for (float v : logits.data()) EXPECT_FALSE(std::isnan(v));
}

TEST_P(ZooSpecTest, BackwardReturnsInputShapedGradient) {
  Rng rng(43);
  Sequential m = build(GetParam(), rng);
  Tensor x = Tensor::full(Shape{2, kImageChannels, kImageSize, kImageSize},
                          0.5f);
  Tensor logits = m.forward(x, true);
  Tensor g(logits.shape());
  g.fill(0.1f);
  Tensor gx = m.backward(g);
  EXPECT_EQ(gx.shape(), x.shape());
  m.zero_grad();
}

TEST_P(ZooSpecTest, DeterministicConstruction) {
  Rng rng1(7), rng2(7);
  Sequential m1 = build(GetParam(), rng1);
  Sequential m2 = build(GetParam(), rng2);
  const auto p1 = m1.parameters();
  const auto p2 = m2.parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_TRUE(p1[i]->equals(*p2[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, ZooSpecTest,
                         ::testing::Values("cnn_small", "cnn_paper", "mlp",
                                           "mlp_small"));

TEST(Zoo, ModelSizesAreOrdered) {
  Rng rng(1);
  Sequential small = build("cnn_small", rng);
  Sequential paper = build("cnn_paper", rng);
  EXPECT_LT(small.parameter_count(), paper.parameter_count());
}

}  // namespace
}  // namespace satd::nn::zoo
