// Shared finite-difference gradient checking for NN tests.
//
// Verifies both parameter gradients and input gradients of a model
// against central differences of the softmax cross-entropy loss. Because
// storage is float32, tolerances are loose-ish (the checks still catch
// any sign/indexing/scale error, which is what matters).
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "nn/loss.h"
#include "nn/sequential.h"

namespace satd::nn::testing {

inline float loss_value(Sequential& model, const Tensor& x,
                        std::span<const std::size_t> labels) {
  const Tensor logits = model.forward(x, /*training=*/true);
  return softmax_cross_entropy_value(logits, labels);
}

/// Checks d(loss)/d(params) for up to `samples_per_param` coordinates of
/// every parameter tensor (spread across the tensor).
inline void check_parameter_gradients(Sequential& model, const Tensor& x,
                                      std::span<const std::size_t> labels,
                                      float h = 5e-3f, float tol = 2e-2f,
                                      std::size_t samples_per_param = 8) {
  // Analytic gradients.
  model.zero_grad();
  const Tensor logits = model.forward(x, /*training=*/true);
  const LossResult loss = softmax_cross_entropy(logits, labels);
  model.backward(loss.grad_logits);

  const auto params = model.parameters();
  const auto grads = model.gradients();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& param = *params[p];
    const Tensor& grad = *grads[p];
    const std::size_t n = param.numel();
    const std::size_t step = std::max<std::size_t>(1, n / samples_per_param);
    for (std::size_t i = 0; i < n; i += step) {
      const float saved = param[i];
      param[i] = saved + h;
      const float up = loss_value(model, x, labels);
      param[i] = saved - h;
      const float down = loss_value(model, x, labels);
      param[i] = saved;
      const float numeric = (up - down) / (2.0f * h);
      const float analytic = grad[i];
      EXPECT_NEAR(analytic, numeric, tol * std::max(1.0f, std::fabs(analytic)))
          << "param tensor " << p << " coordinate " << i;
    }
  }
  model.zero_grad();
}

/// Checks d(loss)/d(input) for up to `samples` input coordinates.
inline void check_input_gradients(Sequential& model, const Tensor& x,
                                  std::span<const std::size_t> labels,
                                  float h = 5e-3f, float tol = 2e-2f,
                                  std::size_t samples = 16) {
  model.zero_grad();
  const Tensor logits = model.forward(x, /*training=*/true);
  const LossResult loss = softmax_cross_entropy(logits, labels);
  const Tensor gx = model.backward(loss.grad_logits);
  model.zero_grad();
  ASSERT_EQ(gx.shape(), x.shape());

  Tensor probe = x;
  const std::size_t n = x.numel();
  const std::size_t step = std::max<std::size_t>(1, n / samples);
  for (std::size_t i = 0; i < n; i += step) {
    const float saved = probe[i];
    probe[i] = saved + h;
    const float up = loss_value(model, probe, labels);
    probe[i] = saved - h;
    const float down = loss_value(model, probe, labels);
    probe[i] = saved;
    const float numeric = (up - down) / (2.0f * h);
    EXPECT_NEAR(gx[i], numeric, tol * std::max(1.0f, std::fabs(gx[i])))
        << "input coordinate " << i;
  }
}

}  // namespace satd::nn::testing
