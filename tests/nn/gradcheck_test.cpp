// Finite-difference verification of every layer's backward pass — the
// foundation the whole reproduction rests on (attacks are defined by
// input gradients; training by parameter gradients).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "gradcheck.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/maxpool2d.h"
#include "nn/sequential.h"

namespace satd::nn {
namespace {

using testing::check_input_gradients;
using testing::check_parameter_gradients;

Tensor random_batch(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  // Inputs in [0.05, 0.95]: away from ReLU kinks' worst cases and inside
  // the valid pixel range.
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(0.05, 0.95));
  return t;
}

std::vector<std::size_t> random_labels(std::size_t n, std::size_t k, Rng& rng) {
  std::vector<std::size_t> labels(n);
  for (auto& y : labels) y = rng.uniform_index(k);
  return labels;
}

TEST(GradCheck, DenseOnly) {
  Rng rng(1);
  Sequential m;
  m.emplace<Dense>(6, 4, rng);
  const Tensor x = random_batch(Shape{3, 6}, rng);
  const auto labels = random_labels(3, 4, rng);
  check_parameter_gradients(m, x, labels);
  check_input_gradients(m, x, labels);
}

TEST(GradCheck, DenseReluDense) {
  Rng rng(2);
  Sequential m;
  m.emplace<Dense>(8, 10, rng);
  m.emplace<ReLU>();
  m.emplace<Dense>(10, 5, rng);
  const Tensor x = random_batch(Shape{4, 8}, rng);
  const auto labels = random_labels(4, 5, rng);
  check_parameter_gradients(m, x, labels);
  check_input_gradients(m, x, labels);
}

TEST(GradCheck, TanhChain) {
  Rng rng(3);
  Sequential m;
  m.emplace<Dense>(6, 6, rng);
  m.emplace<Tanh>();
  m.emplace<Dense>(6, 3, rng);
  const Tensor x = random_batch(Shape{3, 6}, rng);
  const auto labels = random_labels(3, 3, rng);
  check_parameter_gradients(m, x, labels);
  check_input_gradients(m, x, labels);
}

TEST(GradCheck, LeakyReluChain) {
  Rng rng(4);
  Sequential m;
  m.emplace<Dense>(6, 6, rng);
  m.emplace<LeakyReLU>(0.1f);
  m.emplace<Dense>(6, 3, rng);
  const Tensor x = random_batch(Shape{3, 6}, rng);
  const auto labels = random_labels(3, 3, rng);
  check_parameter_gradients(m, x, labels);
  check_input_gradients(m, x, labels);
}

TEST(GradCheck, ConvFlattenDense) {
  // Tanh (smooth) instead of ReLU: perturbing one conv parameter moves a
  // whole channel of pre-activations, so with a kinked activation the
  // finite difference measures subgradient jumps rather than the
  // gradient. The ReLU path is covered by ConvPoolChain below, whose
  // geometry keeps kink crossings rare.
  Rng rng(5);
  Sequential m;
  m.emplace<Conv2d>(1, 3, 3, 0, rng);  // [3, 6, 6]
  m.emplace<Tanh>();
  m.emplace<Flatten>();                // [108]
  m.emplace<Dense>(108, 4, rng);
  const Tensor x = random_batch(Shape{2, 1, 8, 8}, rng);
  const auto labels = random_labels(2, 4, rng);
  check_parameter_gradients(m, x, labels);
  check_input_gradients(m, x, labels);
}

TEST(GradCheck, ConvWithPadding) {
  Rng rng(6);
  Sequential m;
  m.emplace<Conv2d>(2, 2, 3, 1, rng);  // same-size output
  m.emplace<Flatten>();
  m.emplace<Dense>(2 * 6 * 6, 3, rng);
  const Tensor x = random_batch(Shape{2, 2, 6, 6}, rng);
  const auto labels = random_labels(2, 3, rng);
  check_parameter_gradients(m, x, labels);
  check_input_gradients(m, x, labels);
}

TEST(GradCheck, ConvPoolChain) {
  Rng rng(7);
  Sequential m;
  m.emplace<Conv2d>(1, 2, 3, 0, rng);  // [2, 6, 6]
  m.emplace<ReLU>();
  m.emplace<MaxPool2d>(2);             // [2, 3, 3]
  m.emplace<Flatten>();
  m.emplace<Dense>(18, 4, rng);
  const Tensor x = random_batch(Shape{3, 1, 8, 8}, rng);
  const auto labels = random_labels(3, 4, rng);
  check_parameter_gradients(m, x, labels);
  check_input_gradients(m, x, labels);
}

TEST(GradCheck, TwoConvStagesLikeZooModels) {
  // Smooth activations for the same kink-vs-gradient reason as above.
  Rng rng(8);
  Sequential m;
  m.emplace<Conv2d>(1, 2, 3, 0, rng);  // [2, 10, 10]
  m.emplace<Tanh>();
  m.emplace<MaxPool2d>(2);             // [2, 5, 5]
  m.emplace<Conv2d>(2, 3, 2, 0, rng);  // [3, 4, 4]
  m.emplace<Tanh>();
  m.emplace<MaxPool2d>(2);             // [3, 2, 2]
  m.emplace<Flatten>();
  m.emplace<Dense>(12, 4, rng);
  const Tensor x = random_batch(Shape{2, 1, 12, 12}, rng);
  const auto labels = random_labels(2, 4, rng);
  check_parameter_gradients(m, x, labels);
  check_input_gradients(m, x, labels);
}

// Property sweep: the same dense+relu architecture across batch sizes and
// seeds — backward must stay consistent regardless of batch geometry.
class GradCheckSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(GradCheckSweep, DenseReluAcrossBatchSizesAndSeeds) {
  const auto [batch, seed] = GetParam();
  Rng rng(seed);
  Sequential m;
  m.emplace<Dense>(10, 8, rng);
  m.emplace<ReLU>();
  m.emplace<Dense>(8, 6, rng);
  const Tensor x = random_batch(Shape{batch, 10}, rng);
  const auto labels = random_labels(batch, 6, rng);
  check_parameter_gradients(m, x, labels);
  check_input_gradients(m, x, labels);
}

INSTANTIATE_TEST_SUITE_P(
    BatchesAndSeeds, GradCheckSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 9),
                       ::testing::Values(11, 222, 3333)));

}  // namespace
}  // namespace satd::nn
