#include <gtest/gtest.h>

#include "common/contract.h"
#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/flatten.h"
#include "nn/maxpool2d.h"
#include "tensor/ops.h"

namespace satd::nn {
namespace {

TEST(Dense, ForwardComputesAffineMap) {
  Rng rng(1);
  Dense d(2, 2, rng);
  d.weight() = Tensor(Shape{2, 2}, {1, 2, 3, 4});
  d.bias() = Tensor(Shape{2}, {10, 20});
  Tensor x(Shape{1, 2}, {1, 1});
  Tensor y = d.forward(x, false);
  EXPECT_TRUE(y.equals(Tensor(Shape{1, 2}, {14, 26})));
}

TEST(Dense, RejectsWrongInputWidth) {
  Rng rng(1);
  Dense d(3, 2, rng);
  Tensor x(Shape{1, 4});
  EXPECT_THROW(d.forward(x, false), ContractViolation);
}

TEST(Dense, BackwardBeforeForwardThrows) {
  Rng rng(1);
  Dense d(3, 2, rng);
  Tensor g(Shape{1, 2});
  EXPECT_THROW(d.backward(g), ContractViolation);
}

TEST(Dense, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(1);
  Dense d(2, 2, rng);
  Tensor x(Shape{1, 2}, {1, 2});
  Tensor g(Shape{1, 2}, {1, 1});
  d.forward(x, true);
  d.backward(g);
  Tensor after_one = *d.gradients()[0];
  d.forward(x, true);
  d.backward(g);
  Tensor after_two = *d.gradients()[0];
  EXPECT_TRUE(ops::scale(after_one, 2.0f).allclose(after_two, 1e-6f));
  d.zero_grad();
  for (float v : d.gradients()[0]->data()) EXPECT_EQ(v, 0.0f);
}

TEST(Dense, HeInitHasPlausibleScale) {
  Rng rng(42);
  Dense d(1000, 10, rng);
  float sumsq = 0.0f;
  for (float v : d.weight().data()) sumsq += v * v;
  const float var = sumsq / static_cast<float>(d.weight().numel());
  EXPECT_NEAR(var, 2.0f / 1000.0f, 0.4f * 2.0f / 1000.0f);
  for (float v : d.bias().data()) EXPECT_EQ(v, 0.0f);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x(Shape{4}, {-1.0f, 0.0f, 0.5f, 2.0f});
  Tensor y = relu.forward(x, false);
  EXPECT_TRUE(y.equals(Tensor(Shape{4}, {0.0f, 0.0f, 0.5f, 2.0f})));
}

TEST(ReLU, BackwardMasksByInputSign) {
  ReLU relu;
  Tensor x(Shape{4}, {-1.0f, 0.0f, 0.5f, 2.0f});
  relu.forward(x, true);
  Tensor g = Tensor::full(Shape{4}, 3.0f);
  Tensor gx = relu.backward(g);
  EXPECT_TRUE(gx.equals(Tensor(Shape{4}, {0.0f, 0.0f, 3.0f, 3.0f})));
}

TEST(LeakyReLU, NegativeSlopeApplied) {
  LeakyReLU lrelu(0.1f);
  Tensor x(Shape{2}, {-2.0f, 2.0f});
  Tensor y = lrelu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_THROW(LeakyReLU(-0.1f), ContractViolation);
  EXPECT_THROW(LeakyReLU(1.0f), ContractViolation);
}

TEST(Tanh, SaturatesSymmetrically) {
  Tanh tanh_layer;
  Tensor x(Shape{3}, {-10.0f, 0.0f, 10.0f});
  Tensor y = tanh_layer.forward(x, false);
  EXPECT_NEAR(y[0], -1.0f, 1e-4f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_NEAR(y[2], 1.0f, 1e-4f);
}

TEST(MaxPool, ForwardSelectsMaxima) {
  MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 4}, {1, 5, 2, 3, 4, 0, 9, 1});
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 9.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 2}, {1, 5, 2, 3});
  pool.forward(x, true);
  Tensor g(Shape{1, 1, 1, 1}, {7.0f});
  Tensor gx = pool.backward(g);
  EXPECT_TRUE(gx.equals(Tensor(Shape{1, 1, 2, 2}, {0, 7, 0, 0})));
}

TEST(MaxPool, IndivisibleExtentThrows) {
  MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 3, 4});
  EXPECT_THROW(pool.forward(x, false), ContractViolation);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat;
  Tensor x(Shape{2, 3, 4, 5});
  Tensor y = flat.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  Tensor gx = flat.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Conv, OutputShapeMatchesGeometry) {
  Rng rng(3);
  Conv2d conv(1, 4, 3, 0, rng);
  Tensor x(Shape{2, 1, 8, 8});
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 6, 6}));
  EXPECT_EQ(conv.output_shape(Shape{1, 8, 8}), (Shape{4, 6, 6}));
}

TEST(Conv, KnownKernelAppliesCorrectly) {
  Rng rng(3);
  Conv2d conv(1, 1, 2, 0, rng);
  // Kernel = [[1, 0], [0, 1]] (trace of each 2x2 patch), bias 0.5.
  conv.weight() = Tensor(Shape{1, 4}, {1, 0, 0, 1});
  conv.bias() = Tensor(Shape{1}, {0.5f});
  Tensor x(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 1.0f + 4.0f + 0.5f);
}

TEST(Conv, ChannelMismatchThrows) {
  Rng rng(3);
  Conv2d conv(2, 4, 3, 0, rng);
  Tensor x(Shape{1, 1, 8, 8});
  EXPECT_THROW(conv.forward(x, false), ContractViolation);
}

TEST(Dropout, InferenceIsIdentity) {
  Rng rng(5);
  Dropout drop(0.5f, rng);
  Tensor x = Tensor::full(Shape{100}, 1.0f);
  Tensor y = drop.forward(x, /*training=*/false);
  EXPECT_TRUE(y.equals(x));
}

TEST(Dropout, TrainingZeroesApproximatelyP) {
  Rng rng(5);
  Dropout drop(0.3f, rng);
  Tensor x = Tensor::full(Shape{10000}, 1.0f);
  Tensor y = drop.forward(x, /*training=*/true);
  std::size_t zeros = 0;
  for (float v : y.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.7f, 1e-5f);  // inverted scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(5);
  Dropout drop(0.5f, rng);
  Tensor x = Tensor::full(Shape{1000}, 1.0f);
  Tensor y = drop.forward(x, true);
  Tensor g = Tensor::full(Shape{1000}, 1.0f);
  Tensor gx = drop.backward(g);
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(gx[i] == 0.0f, y[i] == 0.0f) << i;
  }
}

TEST(Dropout, InvalidProbabilityThrows) {
  Rng rng(5);
  EXPECT_THROW(Dropout(-0.1f, rng), ContractViolation);
  EXPECT_THROW(Dropout(1.0f, rng), ContractViolation);
}

TEST(Layers, NamesAreDescriptive) {
  Rng rng(1);
  EXPECT_EQ(Dense(3, 4, rng).name(), "Dense(3->4)");
  EXPECT_EQ(Conv2d(1, 8, 3, 1, rng).name(), "Conv2d(1->8, k=3, p=1)");
  EXPECT_EQ(MaxPool2d(2).name(), "MaxPool2d(2)");
  EXPECT_EQ(ReLU().name(), "ReLU");
  EXPECT_EQ(Flatten().name(), "Flatten");
}

}  // namespace
}  // namespace satd::nn
