#include "nn/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "nn/zoo.h"
#include "tensor/serialize.h"

namespace satd::nn {
namespace {

namespace fs = std::filesystem;

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "satd_model_io_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(ModelIoTest, StreamRoundTripPreservesParameters) {
  Rng rng(1);
  Sequential m = zoo::build("mlp_small", rng);
  std::stringstream ss;
  save_model(ss, m, "mlp_small");

  Rng rng2(999);  // different init; must be fully overwritten
  Sequential m2 = zoo::build("mlp_small", rng2);
  const std::string spec = load_parameters(ss, m2);
  EXPECT_EQ(spec, "mlp_small");
  const auto p1 = m.parameters();
  const auto p2 = m2.parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_TRUE(p1[i]->equals(*p2[i]));
  }
}

TEST_F(ModelIoTest, FileRoundTripReproducesOutputs) {
  Rng rng(2);
  Sequential m = zoo::build("cnn_small", rng);
  save_model_file(path("model.bin"), m, "cnn_small");

  Sequential loaded = load_model_file(path("model.bin"));
  Tensor x = Tensor::full(Shape{2, 1, 28, 28}, 0.4f);
  EXPECT_TRUE(m.forward(x, false).equals(loaded.forward(x, false)));
}

TEST_F(ModelIoTest, PeekSpecReadsWithoutLoading) {
  Rng rng(3);
  Sequential m = zoo::build("mlp", rng);
  save_model_file(path("m.bin"), m, "mlp");
  EXPECT_EQ(peek_spec_file(path("m.bin")), "mlp");
}

TEST_F(ModelIoTest, ArchitectureMismatchThrows) {
  Rng rng(4);
  Sequential mlp = zoo::build("mlp_small", rng);
  std::stringstream ss;
  save_model(ss, mlp, "mlp_small");
  Sequential cnn = zoo::build("cnn_small", rng);
  EXPECT_THROW(load_parameters(ss, cnn), SerializeError);
}

TEST_F(ModelIoTest, GarbageFileThrows) {
  {
    std::ofstream os(path("junk.bin"), std::ios::binary);
    os << "this is not a model";
  }
  EXPECT_THROW(load_model_file(path("junk.bin")), SerializeError);
}

TEST_F(ModelIoTest, MissingFileThrows) {
  EXPECT_THROW(load_model_file(path("absent.bin")), std::runtime_error);
  EXPECT_THROW(peek_spec_file(path("absent.bin")), std::runtime_error);
}

}  // namespace
}  // namespace satd::nn
