#include "nn/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/durable_io.h"
#include "common/rng.h"
#include "nn/zoo.h"
#include "tensor/serialize.h"

namespace satd::nn {
namespace {

namespace fs = std::filesystem;

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test dir: ctest runs cases of this binary in parallel, and a
    // shared dir would let one test's teardown delete another's files.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("satd_model_io_") + info->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(ModelIoTest, StreamRoundTripPreservesParameters) {
  Rng rng(1);
  Sequential m = zoo::build("mlp_small", rng);
  std::stringstream ss;
  save_model(ss, m, "mlp_small");

  Rng rng2(999);  // different init; must be fully overwritten
  Sequential m2 = zoo::build("mlp_small", rng2);
  const std::string spec = load_parameters(ss, m2);
  EXPECT_EQ(spec, "mlp_small");
  const auto p1 = m.parameters();
  const auto p2 = m2.parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_TRUE(p1[i]->equals(*p2[i]));
  }
}

TEST_F(ModelIoTest, FileRoundTripReproducesOutputs) {
  Rng rng(2);
  Sequential m = zoo::build("cnn_small", rng);
  save_model_file(path("model.bin"), m, "cnn_small");

  Sequential loaded = load_model_file(path("model.bin"));
  Tensor x = Tensor::full(Shape{2, 1, 28, 28}, 0.4f);
  EXPECT_TRUE(m.forward(x, false).equals(loaded.forward(x, false)));
}

TEST_F(ModelIoTest, PeekSpecReadsWithoutLoading) {
  Rng rng(3);
  Sequential m = zoo::build("mlp", rng);
  save_model_file(path("m.bin"), m, "mlp");
  EXPECT_EQ(peek_spec_file(path("m.bin")), "mlp");
}

TEST_F(ModelIoTest, ArchitectureMismatchThrows) {
  Rng rng(4);
  Sequential mlp = zoo::build("mlp_small", rng);
  std::stringstream ss;
  save_model(ss, mlp, "mlp_small");
  Sequential cnn = zoo::build("cnn_small", rng);
  EXPECT_THROW(load_parameters(ss, cnn), SerializeError);
}

TEST_F(ModelIoTest, GarbageFileThrows) {
  {
    std::ofstream os(path("junk.bin"), std::ios::binary);
    os << "this is not a model";
  }
  EXPECT_THROW(load_model_file(path("junk.bin")), SerializeError);
}

TEST_F(ModelIoTest, MissingFileThrowsIoErrorWithContext) {
  try {
    load_model_file(path("absent.bin"));
    FAIL() << "expected durable::IoError";
  } catch (const durable::IoError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path("absent.bin")), std::string::npos) << msg;
    EXPECT_NE(msg.find("No such file or directory"), std::string::npos) << msg;
  }
  EXPECT_THROW(peek_spec_file(path("absent.bin")), durable::IoError);
}

TEST_F(ModelIoTest, SavedFileIsChecksumFramed) {
  Rng rng(5);
  Sequential m = zoo::build("mlp_small", rng);
  save_model_file(path("framed.bin"), m, "mlp_small");
  std::ifstream is(path("framed.bin"), std::ios::binary);
  const std::string bytes(std::istreambuf_iterator<char>(is), {});
  EXPECT_TRUE(durable::is_checksummed(bytes));
  EXPECT_FALSE(fs::exists(path("framed.bin") + ".tmp"));
}

TEST_F(ModelIoTest, LegacyUnframedFileStillLoads) {
  // Pre-durability builds wrote the raw model payload straight to disk;
  // those files must keep loading (read-compat).
  Rng rng(6);
  Sequential m = zoo::build("mlp_small", rng);
  std::stringstream payload;
  save_model(payload, m, "mlp_small");
  {
    std::ofstream os(path("legacy.bin"), std::ios::binary);
    os << payload.str();
  }
  EXPECT_EQ(peek_spec_file(path("legacy.bin")), "mlp_small");
  Sequential loaded = load_model_file(path("legacy.bin"));
  Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
  EXPECT_TRUE(m.forward(probe, false).equals(loaded.forward(probe, false)));
}

TEST_F(ModelIoTest, EveryZooSpecRoundTripsBitIdentically) {
  // Serving loads arbitrary published checkpoints, so the save/load path
  // must be exact for EVERY architecture in the zoo — including cnn_bn,
  // whose BatchNorm running statistics are state, not parameters. A
  // training-mode forward first moves that state off its init values so
  // the round trip actually exercises the state section.
  Tensor batch(Shape{4, 1, 28, 28});
  Rng data_rng(77);
  for (float& v : batch.data()) {
    v = static_cast<float>(data_rng.uniform());
  }
  for (const std::string& spec : zoo::known_specs()) {
    SCOPED_TRACE(spec);
    Rng rng(11);
    Sequential m = zoo::build(spec, rng);
    (void)m.forward(batch, /*training=*/true);
    save_model_file(path(spec + ".bin"), m, spec);

    Sequential loaded = load_model_file(path(spec + ".bin"));
    const auto s1 = m.state_tensors();
    const auto s2 = loaded.state_tensors();
    ASSERT_EQ(s1.size(), s2.size());
    for (std::size_t i = 0; i < s1.size(); ++i) {
      EXPECT_TRUE(s1[i]->equals(*s2[i])) << "state tensor " << i;
    }
    EXPECT_TRUE(
        m.forward(batch, false).equals(loaded.forward(batch, false)));
  }
}

TEST_F(ModelIoTest, V1ParameterOnlyPayloadStillLoads) {
  // Files written before the state section existed carry the v1 magic
  // and no trailing state; they must load with parameters restored and
  // layer state left at its init defaults.
  Rng rng(8);
  Sequential m = zoo::build("mlp_small", rng);
  std::stringstream ss;
  ss.write("SATDMDL1", 8);
  write_string(ss, "mlp_small");
  const auto params = m.parameters();
  write_u64(ss, params.size());
  for (Tensor* p : params) write_tensor(ss, *p);

  Rng rng2(9);
  Sequential loaded = zoo::build("mlp_small", rng2);
  EXPECT_EQ(load_parameters(ss, loaded), "mlp_small");
  const auto p1 = m.parameters();
  const auto p2 = loaded.parameters();
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_TRUE(p1[i]->equals(*p2[i]));
  }
}

TEST_F(ModelIoTest, CorruptedFrameThrowsCorruptFileError) {
  Rng rng(7);
  Sequential m = zoo::build("mlp_small", rng);
  save_model_file(path("rot.bin"), m, "mlp_small");
  {
    std::fstream f(path("rot.bin"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(64);
    char b = 0;
    f.read(&b, 1);
    f.seekp(64);
    b = static_cast<char>(b ^ 0x5A);  // guaranteed change
    f.write(&b, 1);
  }
  EXPECT_THROW(load_model_file(path("rot.bin")), durable::CorruptFileError);
}

}  // namespace
}  // namespace satd::nn
