#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.h"

namespace satd::nn {
namespace {

// Minimizing f(w) = 0.5 * ||w||^2 (gradient = w) must converge to zero
// from any start for every optimizer.
template <typename Opt>
void expect_converges_on_quadratic(Opt&& opt, int steps = 200) {
  Tensor w(Shape{3}, {5.0f, -3.0f, 1.0f});
  Tensor g(Shape{3});
  std::vector<Tensor*> params{&w};
  std::vector<Tensor*> grads{&g};
  for (int i = 0; i < steps; ++i) {
    g = w;  // gradient of 0.5*||w||^2
    opt.step(params, grads);
  }
  for (float v : w.data()) EXPECT_NEAR(v, 0.0f, 1e-2f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  expect_converges_on_quadratic(Sgd(0.1));
}

TEST(Sgd, MomentumConvergesOnQuadratic) {
  expect_converges_on_quadratic(Sgd(0.05, 0.9));
}

TEST(Adam, ConvergesOnQuadratic) {
  expect_converges_on_quadratic(Adam(0.1), 400);
}

TEST(Sgd, SingleStepIsExact) {
  Sgd opt(0.5);
  Tensor w(Shape{2}, {1.0f, 2.0f});
  Tensor g(Shape{2}, {0.2f, -0.4f});
  std::vector<Tensor*> params{&w};
  std::vector<Tensor*> grads{&g};
  opt.step(params, grads);
  EXPECT_FLOAT_EQ(w[0], 0.9f);
  EXPECT_FLOAT_EQ(w[1], 2.2f);
}

TEST(Sgd, MomentumAcceleratesRepeatedGradient) {
  Sgd opt(0.1, 0.9);
  Tensor w(Shape{1}, {0.0f});
  Tensor g(Shape{1}, {1.0f});
  std::vector<Tensor*> params{&w};
  std::vector<Tensor*> grads{&g};
  opt.step(params, grads);
  const float first = -w[0];  // 0.1
  opt.step(params, grads);
  const float second = -w[0] - first;  // velocity grew: 0.1*1.9
  EXPECT_NEAR(first, 0.1f, 1e-6f);
  EXPECT_GT(second, first);
  EXPECT_NEAR(second, 0.19f, 1e-6f);
}

TEST(Adam, FirstStepHasUnitScaleRegardlessOfGradientMagnitude) {
  // Bias correction makes the first Adam step ~lr * sign(g).
  for (float scale : {1e-3f, 1.0f, 1e3f}) {
    Adam opt(0.01);
    Tensor w(Shape{1}, {0.0f});
    Tensor g(Shape{1}, {scale});
    std::vector<Tensor*> params{&w};
    std::vector<Tensor*> grads{&g};
    opt.step(params, grads);
    EXPECT_NEAR(w[0], -0.01f, 1e-4f) << "scale " << scale;
  }
}

TEST(Optimizer, LearningRateIsAdjustable) {
  Sgd opt(0.1);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.1);
  opt.set_learning_rate(0.01);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.01);
  EXPECT_THROW(opt.set_learning_rate(0.0), ContractViolation);
}

TEST(Optimizer, InvalidHyperparametersThrow) {
  EXPECT_THROW(Sgd(0.0), ContractViolation);
  EXPECT_THROW(Sgd(0.1, 1.0), ContractViolation);
  EXPECT_THROW(Adam(0.1, 1.0), ContractViolation);
  EXPECT_THROW(Adam(0.1, 0.9, 1.0), ContractViolation);
  EXPECT_THROW(Adam(0.1, 0.9, 0.999, 0.0), ContractViolation);
}

TEST(Optimizer, MismatchedListsThrow) {
  Sgd opt(0.1);
  Tensor w(Shape{2});
  Tensor g(Shape{3});
  std::vector<Tensor*> params{&w};
  std::vector<Tensor*> grads{&g};
  EXPECT_THROW(opt.step(params, grads), ContractViolation);
  std::vector<Tensor*> empty;
  EXPECT_THROW(opt.step(params, empty), ContractViolation);
}

TEST(Optimizer, StatefulOptimizersRejectModelSwap) {
  Adam opt(0.1);
  Tensor w1(Shape{2}), g1(Shape{2}, {1, 1});
  std::vector<Tensor*> p1{&w1}, gr1{&g1};
  opt.step(p1, gr1);
  Tensor w2(Shape{2}), w3(Shape{2});
  Tensor g2(Shape{2}), g3(Shape{2});
  std::vector<Tensor*> p2{&w2, &w3}, gr2{&g2, &g3};
  EXPECT_THROW(opt.step(p2, gr2), ContractViolation);
}

TEST(Sgd, WeightDecayShrinksParametersWithZeroGradient) {
  Sgd opt(0.1, 0.0, 0.5);
  Tensor w(Shape{1}, {1.0f});
  Tensor g(Shape{1}, {0.0f});
  std::vector<Tensor*> params{&w};
  std::vector<Tensor*> grads{&g};
  opt.step(params, grads);
  EXPECT_NEAR(w[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Adam, DecoupledWeightDecayShrinksParameters) {
  Adam opt(0.1, 0.9, 0.999, 1e-8, 0.5);
  Tensor w(Shape{1}, {1.0f});
  Tensor g(Shape{1}, {0.0f});
  std::vector<Tensor*> params{&w};
  std::vector<Tensor*> grads{&g};
  opt.step(params, grads);
  // Zero gradient: only the decoupled decay acts (lr * wd * w).
  EXPECT_NEAR(w[0], 1.0f - 0.1f * 0.5f * 1.0f, 1e-6f);
}

TEST(Optimizer, NegativeWeightDecayRejected) {
  EXPECT_THROW(Sgd(0.1, 0.0, -0.1), ContractViolation);
  EXPECT_THROW(Adam(0.1, 0.9, 0.999, 1e-8, -0.1), ContractViolation);
}

TEST(Optimizer, NamesAreStable) {
  EXPECT_EQ(Sgd(0.1).name(), "SGD");
  EXPECT_EQ(Sgd(0.1, 0.5).name(), "SGD(momentum)");
  EXPECT_EQ(Adam(0.1).name(), "Adam");
}

}  // namespace
}  // namespace satd::nn
