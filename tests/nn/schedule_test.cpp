#include "nn/schedule.h"

#include <gtest/gtest.h>

#include "common/contract.h"

namespace satd::nn {
namespace {

TEST(ConstantLr, AlwaysSameRate) {
  ConstantLr lr(0.01);
  EXPECT_DOUBLE_EQ(lr.rate(0), 0.01);
  EXPECT_DOUBLE_EQ(lr.rate(1000), 0.01);
  EXPECT_THROW(ConstantLr(0.0), ContractViolation);
}

TEST(StepDecayLr, DecaysEveryStep) {
  StepDecayLr lr(1.0, 0.5, 10);
  EXPECT_DOUBLE_EQ(lr.rate(0), 1.0);
  EXPECT_DOUBLE_EQ(lr.rate(9), 1.0);
  EXPECT_DOUBLE_EQ(lr.rate(10), 0.5);
  EXPECT_DOUBLE_EQ(lr.rate(20), 0.25);
  EXPECT_DOUBLE_EQ(lr.rate(35), 0.125);
}

TEST(StepDecayLr, ValidatesArguments) {
  EXPECT_THROW(StepDecayLr(0.0, 0.5, 10), ContractViolation);
  EXPECT_THROW(StepDecayLr(1.0, 0.0, 10), ContractViolation);
  EXPECT_THROW(StepDecayLr(1.0, 1.5, 10), ContractViolation);
  EXPECT_THROW(StepDecayLr(1.0, 0.5, 0), ContractViolation);
}

TEST(CosineLr, StartsAtBaseEndsAtFloor) {
  CosineLr lr(1.0, 0.1, 100);
  EXPECT_NEAR(lr.rate(0), 1.0, 1e-9);
  EXPECT_NEAR(lr.rate(100), 0.1, 1e-9);
  EXPECT_NEAR(lr.rate(1000), 0.1, 1e-9);  // clamped after the horizon
}

TEST(CosineLr, MonotonicallyDecreasing) {
  CosineLr lr(1.0, 0.0, 50);
  for (std::size_t e = 1; e <= 50; ++e) {
    EXPECT_LE(lr.rate(e), lr.rate(e - 1) + 1e-12) << e;
  }
}

TEST(CosineLr, HalfwayIsMidpoint) {
  CosineLr lr(1.0, 0.0, 100);
  EXPECT_NEAR(lr.rate(50), 0.5, 1e-9);
}

TEST(CosineLr, ValidatesArguments) {
  EXPECT_THROW(CosineLr(0.0, 0.0, 10), ContractViolation);
  EXPECT_THROW(CosineLr(1.0, 2.0, 10), ContractViolation);
  EXPECT_THROW(CosineLr(1.0, 0.0, 0), ContractViolation);
}

TEST(Schedules, NamesAreStable) {
  EXPECT_EQ(ConstantLr(1.0).name(), "constant");
  EXPECT_EQ(StepDecayLr(1.0, 0.5, 5).name(), "step-decay");
  EXPECT_EQ(CosineLr(1.0, 0.0, 10).name(), "cosine");
}

}  // namespace
}  // namespace satd::nn
