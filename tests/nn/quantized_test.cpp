// Int8 quantized inference path: quantize_symmetric round-trip bounds,
// structural coverage of the whole zoo vocabulary, the batch-of-one /
// sub-batch-split / cross-kernel bit-identity invariants, and the
// headline accuracy pins — quantized clean and FGSM-robust accuracy must
// sit within one percentage point of the float model on trained
// fixtures.
#include "nn/quantized.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "attack/fgsm.h"
#include "common/rng.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"
#include "tensor/kernel/microkernel.h"
#include "tensor/ops.h"

namespace satd {
namespace {

Tensor random_images(std::size_t n, std::uint64_t seed) {
  Tensor x(Shape{n, 1, 28, 28});
  Rng rng(seed);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.raw()[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  return x;
}

float accuracy_of(const std::vector<std::size_t>& preds,
                  const std::vector<std::size_t>& labels) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(labels.size());
}

TEST(QuantizeSymmetric, RoundTripErrorBoundedByHalfScale) {
  Tensor t(Shape{4, 5});
  Rng rng(7);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.raw()[i] = static_cast<float>(rng.uniform(-3.0, 3.0));
  }
  nn::QuantizedTensor q;
  nn::quantize_symmetric(t, q);
  ASSERT_EQ(q.q.size(), t.numel());
  float amax = 0.0f;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    amax = std::max(amax, std::fabs(t.raw()[i]));
  }
  EXPECT_FLOAT_EQ(q.scale, amax / 127.0f);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(q.q[i], -127);
    EXPECT_LE(q.q[i], 127);
    const float back = q.scale * static_cast<float>(q.q[i]);
    EXPECT_NEAR(back, t.raw()[i], q.scale * 0.5f + 1e-7f) << "element " << i;
  }
}

TEST(QuantizeSymmetric, AllZeroTensorUsesUnitScale) {
  Tensor t(Shape{3, 3});
  std::fill(t.raw(), t.raw() + t.numel(), 0.0f);
  nn::QuantizedTensor q;
  nn::quantize_symmetric(t, q);
  EXPECT_FLOAT_EQ(q.scale, 1.0f);
  for (std::int8_t v : q.q) EXPECT_EQ(v, 0);
}

TEST(QuantizeSymmetric, ExtremesMapToFullRange) {
  Tensor t(Shape{2});
  t.raw()[0] = 2.0f;
  t.raw()[1] = -2.0f;
  nn::QuantizedTensor q;
  nn::quantize_symmetric(t, q);
  EXPECT_EQ(q.q[0], 127);
  EXPECT_EQ(q.q[1], -127);
}

// Every spec in the zoo must quantize (the op vocabulary is closed over
// the zoo's layers) and produce finite logits of the right shape, with
// each example's row bit-identical whether it is forwarded alone or
// inside the batch.
TEST(QuantizedModel, CoversEveryZooSpecWithBatchOfOneInvariance) {
  const Tensor batch = random_images(3, 11);
  for (const std::string& spec : nn::zoo::known_specs()) {
    Rng rng(5);
    nn::Sequential net = nn::zoo::build(spec, rng);
    const nn::QuantizedModel qm = nn::QuantizedModel::from(net);
    ASSERT_GT(qm.op_count(), 0u) << spec;

    nn::QuantizedWorkspace ws;
    Tensor logits;
    qm.forward_into(batch, logits, ws);
    ASSERT_EQ(logits.shape().rank(), 2u) << spec;
    ASSERT_EQ(logits.shape()[0], 3u) << spec;
    ASSERT_EQ(logits.shape()[1], 10u) << spec;
    for (std::size_t i = 0; i < logits.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(logits.raw()[i])) << spec;
    }

    // Per-row activation scales make batching invisible: serve one
    // example alone and its logits match its row in the batch exactly.
    const std::size_t cols = logits.shape()[1];
    nn::QuantizedWorkspace ws1;
    Tensor one(Shape{1, 1, 28, 28}), one_logits;
    for (std::size_t i = 0; i < 3; ++i) {
      std::memcpy(one.raw(), batch.raw() + i * one.numel(),
                  one.numel() * sizeof(float));
      qm.forward_into(one, one_logits, ws1);
      for (std::size_t j = 0; j < cols; ++j) {
        EXPECT_EQ(one_logits.raw()[j], logits.raw()[i * cols + j])
            << spec << " row " << i << " col " << j;
      }
    }
  }
}

// gemm_s8 accumulates exactly in int32, so the quantized forward is
// bit-identical no matter which microkernel runs it.
TEST(QuantizedModel, LogitsBitIdenticalAcrossKernels) {
  struct KernelGuard {
    ~KernelGuard() { kernel::set_active_kernel(""); }
  } guard;

  Rng rng(5);
  nn::Sequential net = nn::zoo::build("cnn_small", rng);
  const nn::QuantizedModel qm = nn::QuantizedModel::from(net);
  const Tensor batch = random_images(5, 13);

  ASSERT_TRUE(kernel::set_active_kernel("scalar"));
  nn::QuantizedWorkspace ws;
  Tensor ref;
  qm.forward_into(batch, ref, ws);

  for (const kernel::MicroKernel* k : kernel::available_kernels()) {
    ASSERT_TRUE(kernel::set_active_kernel(k->name));
    nn::QuantizedWorkspace kws;
    Tensor logits;
    qm.forward_into(batch, logits, kws);
    EXPECT_TRUE(logits.equals(ref)) << k->name;
  }
}

TEST(QuantizedModel, PredictIndependentOfSubBatchSplit) {
  Rng rng(9);
  nn::Sequential net = nn::zoo::build("mlp_small", rng);
  const nn::QuantizedModel qm = nn::QuantizedModel::from(net);
  const Tensor images = random_images(23, 17);

  nn::QuantizedWorkspace ws_a, ws_b;
  Tensor logits_a, logits_b;
  std::vector<std::size_t> preds_a, preds_b;
  metrics::predict_quantized_into(qm, images, 64, logits_a, preds_a, ws_a);
  metrics::predict_quantized_into(qm, images, 7, logits_b, preds_b, ws_b);
  EXPECT_TRUE(logits_a.equals(logits_b));
  EXPECT_EQ(preds_a, preds_b);
}

// Trained-fixture accuracy pins. The fixture trains once per suite run
// (everything is deterministic: fixed seeds, thread-count-invariant
// numerics), then both headline deltas are checked against the float
// model: clean accuracy and FGSM robust accuracy within 1%.
class QuantizedAccuracy : public ::testing::Test {
 protected:
  static constexpr float kMaxDelta = 0.01f + 1e-4f;

  static data::DatasetPair make_data() {
    data::SyntheticConfig cfg;
    cfg.train_size = 300;
    cfg.test_size = 200;
    cfg.seed = 44;
    return data::make_synthetic_digits(cfg);
  }

  static void check_deltas(nn::Sequential& net, const data::Dataset& test,
                           const char* what) {
    const nn::QuantizedModel qm = nn::QuantizedModel::from(net);
    nn::QuantizedWorkspace ws;
    Tensor logits, qlogits;
    std::vector<std::size_t> preds, qpreds;

    metrics::predict_into(net, test.images, 64, logits, preds);
    metrics::predict_quantized_into(qm, test.images, 64, qlogits, qpreds, ws);
    const float clean_f = accuracy_of(preds, test.labels);
    const float clean_q = accuracy_of(qpreds, test.labels);
    EXPECT_GT(clean_f, 0.5f) << what << ": fixture failed to train";
    EXPECT_NEAR(clean_q, clean_f, kMaxDelta) << what << " clean";

    // Robust accuracy on a shared adversarial set crafted against the
    // float model, so both paths face the same perturbations.
    attack::Fgsm fgsm(0.1f);
    Tensor adv;
    fgsm.perturb_into(net, test.images,
                      std::span<const std::size_t>(test.labels), adv);
    metrics::predict_into(net, adv, 64, logits, preds);
    metrics::predict_quantized_into(qm, adv, 64, qlogits, qpreds, ws);
    const float robust_f = accuracy_of(preds, test.labels);
    const float robust_q = accuracy_of(qpreds, test.labels);
    EXPECT_NEAR(robust_q, robust_f, kMaxDelta) << what << " robust";
  }
};

TEST_F(QuantizedAccuracy, MlpWithinOnePercentCleanAndRobust) {
  const data::DatasetPair digits = make_data();
  Rng rng(1);
  nn::Sequential net = nn::zoo::build("mlp_small", rng);
  core::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.seed = 2;
  core::VanillaTrainer trainer(net, cfg);
  trainer.fit(digits.train);
  check_deltas(net, digits.test, "mlp_small");
}

TEST_F(QuantizedAccuracy, ConvWithinOnePercentCleanAndRobust) {
  const data::DatasetPair digits = make_data();
  Rng rng(1);
  nn::Sequential net = nn::zoo::build("cnn_small", rng);
  core::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.seed = 2;
  core::VanillaTrainer trainer(net, cfg);
  trainer.fit(digits.train);
  check_deltas(net, digits.test, "cnn_small");
}

}  // namespace
}  // namespace satd
