// Pins the parallel-execution determinism contract (DESIGN.md §8): every
// hot-path decomposition is over independent output elements, so train
// steps, attacks and full training runs are bit-identical for any thread
// count. Runs the same workloads at 1, 2 and 4 global threads and
// compares results with exact float equality.
#include <gtest/gtest.h>

#include <vector>

#include "attack/bim.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/fgsm_adv_trainer.h"
#include "data/synthetic.h"
#include "nn/loss.h"
#include "nn/zoo.h"
#include "tensor/tensor.h"

namespace satd {
namespace {

Tensor random_batch(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(Shape{n, 1, 28, 28});
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(0, 1));
  return t;
}

std::vector<std::size_t> cyclic_labels(std::size_t n) {
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % 10;
  return labels;
}

/// Snapshots all model parameters (deep copies).
std::vector<Tensor> snapshot_params(nn::Sequential& model) {
  std::vector<Tensor> out;
  for (const Tensor* p : model.parameters()) out.push_back(*p);
  return out;
}

void expect_bit_identical(const std::vector<Tensor>& a,
                          const std::vector<Tensor>& b, std::size_t threads) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].equals(b[i]))
        << "tensor " << i << " differs at " << threads << " threads";
  }
}

/// Restores the SATD_THREADS / hardware default pool after each test so
/// thread-count overrides never leak into other suites.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ~ParallelDeterminismTest() override { ThreadPool::set_global_threads(0); }
  static constexpr std::size_t kThreadCounts[] = {1, 2, 4};
};

TEST_F(ParallelDeterminismTest, TrainStepGradientsBitIdentical) {
  const Tensor x = random_batch(32, 17);
  const auto labels = cyclic_labels(32);

  std::vector<Tensor> reference;
  Tensor ref_logits;
  for (std::size_t threads : kThreadCounts) {
    ThreadPool::set_global_threads(threads);
    Rng rng(5);
    nn::Sequential model = nn::zoo::build("cnn_small", rng);
    Tensor logits, gx;
    nn::LossResult loss;
    model.forward_into(x, logits, true);
    nn::softmax_cross_entropy_into(logits, labels, loss);
    model.backward_into(loss.grad_logits, gx);

    std::vector<Tensor> grads;
    for (const Tensor* g : model.gradients()) grads.push_back(*g);
    grads.push_back(gx);
    if (threads == 1) {
      reference = std::move(grads);
      ref_logits = logits;
    } else {
      EXPECT_TRUE(logits.equals(ref_logits))
          << "logits differ at " << threads << " threads";
      expect_bit_identical(reference, grads, threads);
    }
  }
}

TEST_F(ParallelDeterminismTest, BimAttackBitIdentical) {
  const Tensor x = random_batch(16, 23);
  const auto labels = cyclic_labels(16);

  Tensor reference;
  for (std::size_t threads : kThreadCounts) {
    ThreadPool::set_global_threads(threads);
    Rng rng(9);
    nn::Sequential model = nn::zoo::build("cnn_small", rng);
    attack::Bim bim(0.3f, 10);
    Tensor adv;
    bim.perturb_into(model, x, labels, adv);
    if (threads == 1) {
      reference = adv;
    } else {
      EXPECT_TRUE(adv.equals(reference))
          << "BIM output differs at " << threads << " threads";
    }
  }
}

// The acceptance-level pin: two full adversarial-training epochs produce
// bit-identical model parameters at 1, 2 and 4 threads.
TEST_F(ParallelDeterminismTest, TwoEpochTrainingParametersBitIdentical) {
  data::SyntheticConfig data_cfg;
  data_cfg.train_size = 96;
  data_cfg.test_size = 10;
  data_cfg.seed = 31;
  const auto data = data::make_synthetic_digits(data_cfg);

  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 32;
  cfg.seed = 7;
  cfg.eps = 0.2f;

  std::vector<Tensor> reference;
  float ref_loss = 0.0f;
  for (std::size_t threads : kThreadCounts) {
    ThreadPool::set_global_threads(threads);
    Rng rng(cfg.seed);
    nn::Sequential model = nn::zoo::build("cnn_small", rng);
    core::FgsmAdvTrainer trainer(model, cfg);
    const core::TrainReport report = trainer.fit(data.train);
    ASSERT_EQ(report.epochs.size(), 2u);
    if (threads == 1) {
      reference = snapshot_params(model);
      ref_loss = report.final_loss();
    } else {
      EXPECT_EQ(report.final_loss(), ref_loss)
          << "loss differs at " << threads << " threads";
      expect_bit_identical(reference, snapshot_params(model), threads);
    }
  }
}

}  // namespace
}  // namespace satd
