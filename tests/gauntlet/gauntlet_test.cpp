// Gauntlet subsystem: attack-plan registry, eps-sweep knee rule,
// surrogate-exclusion invariant and the runner's matrix-row shape +
// CSV determinism.
#include "gauntlet/gauntlet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "attack/bim.h"
#include "common/contract.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "gauntlet/eps_profile.h"
#include "gauntlet/transfer.h"
#include "nn/zoo.h"

namespace satd::gauntlet {
namespace {

const data::DatasetPair& digits() {
  static const data::DatasetPair pair = [] {
    data::SyntheticConfig cfg;
    cfg.train_size = 150;
    cfg.test_size = 40;
    cfg.seed = 55;
    return data::make_synthetic_digits(cfg);
  }();
  return pair;
}

nn::Sequential train_one(const std::string& method, std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  core::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.seed = seed;
  cfg.eps = 0.2f;
  cfg.bim_iterations = 2;
  auto trainer = core::make_trainer(method, model, cfg);
  trainer->fit(digits().train);
  return model;
}

// ---------------------------------------------------------------- plan

TEST(AttackPlan, StandardPlanNamesAndOrder) {
  const auto plan = white_box_plan();
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].name, "fgsm");
  EXPECT_EQ(plan[1].name, "bim10");
  EXPECT_EQ(plan[2].name, "mifgsm10");
  EXPECT_EQ(plan[3].name, "restart_pgd");

  PlanConfig cfg;
  cfg.bim_iterations = 7;
  cfg.mifgsm_iterations = 5;
  const auto custom = white_box_plan(cfg);
  EXPECT_EQ(custom[1].name, "bim7");
  EXPECT_EQ(custom[2].name, "mifgsm5");
}

TEST(AttackPlan, SpecsBuildFreshIndependentAttacks) {
  const auto plan = white_box_plan();
  for (const auto& spec : plan) {
    auto a = spec.make(0.25f);
    auto b = spec.make(0.25f);
    ASSERT_NE(a, nullptr) << spec.name;
    ASSERT_NE(b, nullptr) << spec.name;
    EXPECT_NE(a.get(), b.get());
    EXPECT_FLOAT_EQ(a->epsilon(), 0.25f) << spec.name;
  }
}

TEST(AttackPlan, FindSpecThrowsListingKnownNames) {
  const auto plan = white_box_plan();
  EXPECT_EQ(find_spec(plan, "restart_pgd").name, "restart_pgd");
  try {
    find_spec(plan, "cw_l2");
    FAIL() << "find_spec accepted an unknown attack name";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cw_l2"), std::string::npos) << what;
    for (const auto& spec : plan) {
      EXPECT_NE(what.find(spec.name), std::string::npos) << what;
    }
  }
}

// ------------------------------------------------------------- profile

std::vector<metrics::EpsPoint> points(std::initializer_list<float> eps,
                                      std::initializer_list<float> acc) {
  std::vector<metrics::EpsPoint> out;
  auto e = eps.begin();
  auto a = acc.begin();
  for (; e != eps.end(); ++e, ++a) out.push_back({*e, *a});
  return out;
}

TEST(EpsProfile, EnvelopeIsRunningMinimumAndKneeIsFirstCollapse) {
  // Raw curve is non-monotone (attack noise); the envelope must clamp it
  // and the knee must fire at the FIRST budget below 0.5 * clean.
  const auto profile = finish_profile(
      1.0f, points({0.1f, 0.2f, 0.3f, 0.4f}, {0.9f, 0.5f, 0.7f, 0.2f}));
  ASSERT_EQ(profile.envelope.size(), 4u);
  EXPECT_FLOAT_EQ(profile.envelope[0], 0.9f);
  EXPECT_FLOAT_EQ(profile.envelope[1], 0.5f);
  EXPECT_FLOAT_EQ(profile.envelope[2], 0.5f);  // clamped, raw was 0.7
  EXPECT_FLOAT_EQ(profile.envelope[3], 0.2f);
  EXPECT_TRUE(profile.collapsed);
  // 0.5 is NOT below 0.5*clean (strict <); collapse starts at eps=0.4.
  EXPECT_FLOAT_EQ(profile.knee_eps, 0.4f);
}

TEST(EpsProfile, NoCollapseYieldsSentinelKnee) {
  const auto profile =
      finish_profile(0.8f, points({0.1f, 0.2f}, {0.7f, 0.6f}));
  EXPECT_FALSE(profile.collapsed);
  EXPECT_FLOAT_EQ(profile.knee_eps, -1.0f);
}

TEST(EpsProfile, RequiresStrictlyIncreasingEps) {
  EXPECT_THROW(finish_profile(1.0f, points({0.2f, 0.2f}, {0.5f, 0.4f})),
               ContractViolation);
  EXPECT_THROW(finish_profile(1.0f, points({0.3f, 0.2f}, {0.5f, 0.4f})),
               ContractViolation);
}

TEST(EpsProfile, SweepOverRealModelIsDeterministic) {
  nn::Sequential model = train_one("vanilla", 11);
  const std::vector<float> sweep{0.05f, 0.15f, 0.3f};
  const EpsProfile a = profile_collapse(model, digits().test, sweep, 2, 16);
  const EpsProfile b = profile_collapse(model, digits().test, sweep, 2, 16);
  ASSERT_EQ(a.points.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_FLOAT_EQ(a.points[i].eps, sweep[i]);
    EXPECT_FLOAT_EQ(a.points[i].accuracy, b.points[i].accuracy);
    EXPECT_LE(a.envelope[i], a.clean_accuracy + 1e-6f);
    if (i > 0) {
      EXPECT_LE(a.envelope[i], a.envelope[i - 1]);
    }
  }
  EXPECT_FLOAT_EQ(a.knee_eps, b.knee_eps);
}

// ------------------------------------------------------------ transfer

TEST(Transfer, SurrogateSelectionExcludesDefenseByNameAndPointer) {
  nn::Sequential m0 = train_one("vanilla", 1);
  nn::Sequential m1 = train_one("fgsm_adv", 2);
  nn::Sequential m2 = train_one("proposed", 3);
  const std::vector<metrics::TransferModel> pool{
      {"vanilla", &m0}, {"fgsm_adv", &m1}, {"proposed", &m2}};

  const auto surrogates = select_surrogates(pool[1], pool);
  ASSERT_EQ(surrogates.size(), 2u);
  for (const auto& s : surrogates) {
    EXPECT_NE(s.name, "fgsm_adv");
    EXPECT_NE(s.model, &m1);
  }

  // Same model smuggled in under a different name: the pointer match
  // must still exclude it.
  const std::vector<metrics::TransferModel> aliased{
      {"vanilla", &m0}, {"fgsm_adv", &m1}, {"fgsm_adv_copy", &m1}};
  const auto held_out = select_surrogates(aliased[1], aliased);
  ASSERT_EQ(held_out.size(), 1u);
  EXPECT_EQ(held_out[0].model, &m0);

  // A defense with no held-out surrogate is a contract violation, not a
  // silently-empty transfer column.
  const std::vector<metrics::TransferModel> lonely{{"vanilla", &m0}};
  EXPECT_THROW(select_surrogates(lonely[0], lonely), ContractViolation);
}

TEST(Transfer, CellWorstCaseIsMinimumOverSurrogates) {
  nn::Sequential m0 = train_one("vanilla", 1);
  nn::Sequential m1 = train_one("fgsm_adv", 2);
  nn::Sequential m2 = train_one("proposed", 3);
  const std::vector<metrics::TransferModel> pool{
      {"vanilla", &m0}, {"fgsm_adv", &m1}, {"proposed", &m2}};

  attack::Bim bim(0.2f, 2);
  const TransferCell cell =
      transfer_cell(pool[2], pool, digits().test, bim, 16);
  ASSERT_EQ(cell.surrogate_names.size(), 2u);
  ASSERT_EQ(cell.per_surrogate_accuracy.size(), 2u);
  EXPECT_EQ(std::count(cell.surrogate_names.begin(),
                       cell.surrogate_names.end(), "proposed"),
            0);
  const float expected_min = *std::min_element(
      cell.per_surrogate_accuracy.begin(), cell.per_surrogate_accuracy.end());
  EXPECT_FLOAT_EQ(cell.worst_case, expected_min);
}

// -------------------------------------------------------------- runner

GauntletConfig tiny_gauntlet() {
  GauntletConfig cfg;
  cfg.eps = 0.2f;
  cfg.plan.bim_iterations = 2;
  cfg.plan.mifgsm_iterations = 2;
  cfg.plan.pgd_iterations = 2;
  cfg.plan.pgd_restarts = 2;
  cfg.transfer_iterations = 2;
  cfg.eps_sweep = {0.1f, 0.3f};
  cfg.sweep_iterations = 2;
  cfg.batch_size = 16;
  return cfg;
}

TEST(GauntletRunner, ColumnsFollowTheFixedSchema) {
  const GauntletRunner runner(tiny_gauntlet());
  const std::vector<std::string> want{"clean",       "fgsm",
                                      "bim2",        "mifgsm2",
                                      "restart_pgd", "transfer_bim2",
                                      "eps_knee"};
  EXPECT_EQ(runner.columns(), want);
  EXPECT_EQ(runner.csv_header(),
            "method,clean,fgsm,bim2,mifgsm2,restart_pgd,transfer_bim2,"
            "eps_knee");
}

TEST(GauntletRunner, RowIsCompleteBoundedAndByteDeterministic) {
  nn::Sequential m0 = train_one("vanilla", 1);
  nn::Sequential m1 = train_one("proposed", 3);
  const std::vector<metrics::TransferModel> pool{{"vanilla", &m0},
                                                 {"proposed", &m1}};
  const GauntletRunner runner(tiny_gauntlet());

  const GauntletRow row = runner.run_row(pool[1], pool, digits().test);
  EXPECT_EQ(row.method, "proposed");
  ASSERT_EQ(row.values.size(), runner.columns().size());
  // All accuracy columns (everything but the trailing knee) live in
  // [0, 1]; the knee is a swept eps or the -1 sentinel.
  for (std::size_t i = 0; i + 1 < row.values.size(); ++i) {
    EXPECT_GE(row.values[i], 0.0f) << runner.columns()[i];
    EXPECT_LE(row.values[i], 1.0f) << runner.columns()[i];
  }
  const float knee = row.values.back();
  EXPECT_TRUE(knee == -1.0f || knee == 0.1f || knee == 0.3f) << knee;

  const GauntletRow again = runner.run_row(pool[1], pool, digits().test);
  EXPECT_EQ(runner.csv_row(row), runner.csv_row(again));
  EXPECT_NE(runner.csv_row(row).find("proposed,"), std::string::npos);
}

}  // namespace
}  // namespace satd::gauntlet
