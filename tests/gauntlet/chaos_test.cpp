// Kill-9 mid-gauntlet chaos drill: crash a row job, resume from the
// durable manifest, and require the merged matrix CSV to be
// byte-identical to an uninterrupted run's. This is the in-process twin
// of the CI drill that SIGKILLs the real bench_all --gauntlet binary.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "experiments.h"
#include "runtime/supervisor.h"

namespace satd::bench {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class GauntletChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_cwd_ = fs::current_path();
    root_ = fs::temp_directory_path() / "satd_gauntlet_chaos";
    fs::remove_all(root_);
    fs::create_directories(root_ / "clean");
    fs::create_directories(root_ / "crashed");
    runtime::fault::disarm();
  }

  void TearDown() override {
    fs::current_path(original_cwd_);
    runtime::fault::disarm();
    fs::remove_all(root_);
  }

  /// The shared scale: small enough to keep three episodes fast, and one
  /// model cache across all of them so resumed training jobs are hits.
  metrics::ExperimentEnv env() const {
    metrics::ExperimentEnv env;
    env.train_size = 60;
    env.test_size = 30;
    env.epochs = 2;
    env.batch_size = 32;
    env.seed = 42;
    env.model_spec = "mlp_small";
    env.cache_dir = (root_ / "cache").string();
    return env;
  }

  /// Builds the gauntlet graph and runs it under a Supervisor in `cwd`
  /// (row/matrix CSVs land in the working directory, mirroring
  /// bench_all). An empty manifest path = memory-only.
  runtime::MatrixReport run_matrix(const fs::path& cwd,
                                   const std::string& manifest) {
    fs::current_path(cwd);
    const metrics::ExperimentEnv e = env();
    runtime::Supervisor::Options options;
    options.manifest_path = manifest;
    options.fingerprint = "gauntlet-chaos-test:" + e.describe();
    runtime::Supervisor supervisor(options);
    for (const ExperimentJob& entry :
         build_gauntlet_jobs(e, "digits", runtime::kNoDeadline, 3)) {
      runtime::Job job = entry.job;
      job.run = [&e, body = entry.body](runtime::JobContext& jc) {
        ExperimentContext ctx{e, jc.stop_check(), false};
        try {
          body(ctx);
        } catch (const ExperimentInterrupted& ex) {
          return runtime::JobResult::overrun(ex.what());
        }
        return runtime::JobResult::ok();
      };
      supervisor.add(std::move(job));
    }
    return supervisor.run();
  }

  fs::path original_cwd_;
  fs::path root_;
};

TEST_F(GauntletChaosTest, CrashedRowResumesToBitIdenticalMatrix) {
  // Episode A: uninterrupted reference run (memory-only manifest).
  const runtime::MatrixReport clean = run_matrix(root_ / "clean", "");
  ASSERT_TRUE(clean.all_done()) << clean.to_string();
  const std::string reference = slurp(root_ / "clean" / "gauntlet_matrix.csv");
  ASSERT_FALSE(reference.empty());

  // Episode B: same config in a fresh directory, journaling to a durable
  // manifest; a row job dies mid-matrix as if SIGKILLed. Training jobs
  // re-resolve through the shared model cache, so the crash lands after
  // real progress exists to preserve.
  const std::string manifest = (root_ / "gauntlet_manifest.bin").string();
  runtime::fault::arm_job_crash("gauntlet:row:proposed");
  EXPECT_THROW(run_matrix(root_ / "crashed", manifest),
               runtime::SimulatedCrashError);
  EXPECT_FALSE(fs::exists(root_ / "crashed" / "gauntlet_matrix.csv"))
      << "merge job must not have run before the crash";

  // Episode C: rerun adopts the manifest, skips adopted DONE jobs,
  // finishes the victim and the merge.
  const runtime::MatrixReport resumed = run_matrix(root_ / "crashed", manifest);
  ASSERT_TRUE(resumed.all_done()) << resumed.to_string();
  bool any_adopted = false;
  for (const runtime::JobOutcome& outcome : resumed.jobs) {
    any_adopted = any_adopted || outcome.resumed;
  }
  EXPECT_TRUE(any_adopted) << "resume must adopt pre-crash DONE jobs";

  EXPECT_EQ(slurp(root_ / "crashed" / "gauntlet_matrix.csv"), reference)
      << "resumed matrix must be bit-identical to the uninterrupted run";
}

}  // namespace
}  // namespace satd::bench
