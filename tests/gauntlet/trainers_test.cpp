// The two new factory trainers the gauntlet benchmarks — Ensemble-Adv
// (Tramèr et al. 2018) and FGSM-Reg (Vivek & Babu 2020) — plus the
// cached-model reuse path the gauntlet's row jobs lean on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/contract.h"
#include "core/ensemble_adv_trainer.h"
#include "core/factory.h"
#include "core/fgsm_reg_trainer.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "metrics/model_cache.h"
#include "nn/zoo.h"

namespace satd::core {
namespace {

namespace fs = std::filesystem;

data::DatasetPair tiny_digits() {
  data::SyntheticConfig cfg;
  cfg.train_size = 150;
  cfg.test_size = 50;
  cfg.seed = 77;
  return data::make_synthetic_digits(cfg);
}

TrainConfig tiny_config(std::size_t epochs = 6) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.seed = 8;
  cfg.eps = 0.15f;
  cfg.ensemble_surrogate_count = 2;
  cfg.ensemble_surrogate_epochs = 2;
  cfg.fgsm_reg_weight = 0.3f;
  cfg.fgsm_reg_iterations = 2;
  return cfg;
}

TEST(EnsembleAdvTrainer, NameAndValidation) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  EXPECT_EQ(EnsembleAdvTrainer(m, tiny_config()).name(), "Ensemble-Adv");

  TrainConfig bad = tiny_config();
  bad.ensemble_surrogate_count = 0;
  EXPECT_THROW(EnsembleAdvTrainer(m, bad), ContractViolation);
  bad = tiny_config();
  bad.ensemble_surrogate_epochs = 0;
  EXPECT_THROW(EnsembleAdvTrainer(m, bad), ContractViolation);
  bad = tiny_config();
  bad.ensemble_surrogate_spec = "resnet152";
  EXPECT_THROW(EnsembleAdvTrainer(m, bad), ContractViolation);
}

TEST(EnsembleAdvTrainer, TrainsSurrogatesAndLearnsCleanData) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  EnsembleAdvTrainer trainer(m, tiny_config(10));
  EXPECT_TRUE(trainer.surrogates().empty()) << "surrogates built lazily";
  trainer.fit(data.train);
  EXPECT_EQ(trainer.surrogates().size(), 2u);
  EXPECT_GT(metrics::evaluate_clean(m, data.test), 0.5f);
  // The static surrogates must themselves be trained classifiers, not
  // random inits — otherwise the ensemble is just noisy FGSM.
  for (const auto& surrogate : trainer.surrogates()) {
    nn::Sequential& s = const_cast<nn::Sequential&>(surrogate);
    EXPECT_GT(metrics::evaluate_clean(s, data.test), 0.3f);
  }
}

TEST(EnsembleAdvTrainer, DeterministicGivenSeeds) {
  const auto data = tiny_digits();
  auto run = [&] {
    Rng rng(3);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    EnsembleAdvTrainer trainer(m, tiny_config(3));
    trainer.fit(data.train);
    Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
    return m.forward(probe, false);
  };
  EXPECT_TRUE(run().equals(run()));
}

TEST(EnsembleAdvTrainer, SurrogatesAreIndependentOfEachOther) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  EnsembleAdvTrainer trainer(m, tiny_config(2));
  trainer.fit(data.train);
  ASSERT_EQ(trainer.surrogates().size(), 2u);
  Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
  nn::Sequential& s0 = const_cast<nn::Sequential&>(trainer.surrogates()[0]);
  nn::Sequential& s1 = const_cast<nn::Sequential&>(trainer.surrogates()[1]);
  EXPECT_FALSE(s0.forward(probe, false).equals(s1.forward(probe, false)))
      << "surrogate streams must be salted per index";
}

TEST(FgsmRegTrainer, NameAndValidation) {
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  EXPECT_EQ(FgsmRegTrainer(m, tiny_config()).name(), "FGSM-Reg");

  TrainConfig bad = tiny_config();
  bad.fgsm_reg_weight = -0.1f;
  EXPECT_THROW(FgsmRegTrainer(m, bad), ContractViolation);
  bad = tiny_config();
  bad.fgsm_reg_iterations = 0;
  EXPECT_THROW(FgsmRegTrainer(m, bad), ContractViolation);
}

TEST(FgsmRegTrainer, LearnsCleanData) {
  const auto data = tiny_digits();
  Rng rng(1);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  FgsmRegTrainer trainer(m, tiny_config(10));
  trainer.fit(data.train);
  EXPECT_GT(metrics::evaluate_clean(m, data.test), 0.5f);
}

TEST(FgsmRegTrainer, DeterministicGivenSeeds) {
  const auto data = tiny_digits();
  auto run = [&] {
    Rng rng(3);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    FgsmRegTrainer trainer(m, tiny_config(3));
    trainer.fit(data.train);
    Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
    return m.forward(probe, false);
  };
  EXPECT_TRUE(run().equals(run()));
}

TEST(FgsmRegTrainer, PenaltyWeightChangesTheTrainedModel) {
  const auto data = tiny_digits();
  auto run = [&](float lambda) {
    Rng rng(3);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    TrainConfig cfg = tiny_config(3);
    cfg.fgsm_reg_weight = lambda;
    FgsmRegTrainer trainer(m, cfg);
    trainer.fit(data.train);
    Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
    return m.forward(probe, false);
  };
  EXPECT_FALSE(run(0.0f).equals(run(1.0f)))
      << "lambda must actually reach the update";
}

// The gauntlet's row jobs load every participant through the model
// cache; each new method must round-trip it (miss -> train -> hit ->
// identical model).
class CachedReuseTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("satd_gauntlet_cache_" + GetParam());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_P(CachedReuseTest, SecondLoadIsACacheHitWithIdenticalModel) {
  const std::string method = GetParam();
  const auto data = tiny_digits();

  metrics::ModelKey key;
  key.method = method;
  key.dataset = "digits";
  key.model_spec = "mlp_small";
  key.train_size = data.train.size();
  key.epochs = 2;
  key.batch_size = 32;
  key.seed = 8;
  key.eps = 0.15f;

  auto train = [&](nn::Sequential& model) {
    TrainConfig cfg = tiny_config(key.epochs);
    auto trainer = make_trainer(method, model, cfg);
    return trainer->fit(data.train);
  };

  metrics::CachedModel first = metrics::train_or_load(dir_, key, train);
  EXPECT_FALSE(first.from_cache);
  metrics::CachedModel second = metrics::train_or_load(dir_, key, train);
  EXPECT_TRUE(second.from_cache);

  Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
  EXPECT_TRUE(first.model.forward(probe, false)
                  .equals(second.model.forward(probe, false)))
      << method << " cache round-trip changed the model";
}

INSTANTIATE_TEST_SUITE_P(NewMethods, CachedReuseTest,
                         ::testing::Values("ensemble_adv", "fgsm_reg"));

}  // namespace
}  // namespace satd::core
