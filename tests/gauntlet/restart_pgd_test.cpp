// Random-restart PGD: seeded determinism, restart independence, and the
// per-example best-of selection contract the gauntlet's resumable matrix
// cells rely on.
#include "attack/restart.h"

#include <gtest/gtest.h>

#include <cmath>

#include "attack/attack.h"
#include "common/contract.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "nn/zoo.h"

namespace satd::attack {
namespace {

const data::DatasetPair& digits() {
  static const data::DatasetPair pair = [] {
    data::SyntheticConfig cfg;
    cfg.train_size = 120;
    cfg.test_size = 24;
    cfg.seed = 91;
    return data::make_synthetic_digits(cfg);
  }();
  return pair;
}

nn::Sequential& model() {
  static nn::Sequential m = [] {
    Rng rng(4);
    nn::Sequential net = nn::zoo::build("mlp_small", rng);
    core::TrainConfig cfg;
    cfg.epochs = 4;
    cfg.seed = 4;
    core::VanillaTrainer trainer(net, cfg);
    trainer.fit(digits().train);
    return net;
  }();
  return m;
}

TEST(RestartPgd, ValidatesParameters) {
  EXPECT_THROW(RestartPgd(-0.1f, 3, 0.0f, 2), ContractViolation);
  EXPECT_THROW(RestartPgd(0.2f, 0, 0.0f, 2), ContractViolation);
  EXPECT_THROW(RestartPgd(0.2f, 3, 0.0f, 0), ContractViolation);
}

TEST(RestartPgd, NameAndAccessors) {
  RestartPgd attack(0.2f, 5, 0.0f, 3);
  EXPECT_FLOAT_EQ(attack.epsilon(), 0.2f);
  EXPECT_EQ(attack.iterations(), 5u);
  EXPECT_EQ(attack.restarts(), 3u);
  EXPECT_NE(attack.name().find("PGD-R3"), std::string::npos);
}

TEST(RestartPgd, DeterministicAcrossCallsAndInstances) {
  const auto& test = digits().test;
  RestartPgd a(0.2f, 3, 0.0f, 3, 77);
  RestartPgd b(0.2f, 3, 0.0f, 3, 77);
  Tensor adv_a, adv_b, adv_a2;
  a.perturb_into(model(), test.images, test.labels, adv_a);
  b.perturb_into(model(), test.images, test.labels, adv_b);
  // Stateless across calls: a second perturbation of the same instance
  // must not drift (fresh per-restart streams, no mutable RNG state).
  a.perturb_into(model(), test.images, test.labels, adv_a2);
  EXPECT_TRUE(adv_a.equals(adv_b));
  EXPECT_TRUE(adv_a.equals(adv_a2));
}

TEST(RestartPgd, DifferentSeedsAndRestartsDiffer) {
  const auto& test = digits().test;
  RestartPgd a(0.2f, 3, 0.0f, 2, 77);
  RestartPgd b(0.2f, 3, 0.0f, 2, 78);
  Tensor adv_a, adv_b;
  a.perturb_into(model(), test.images, test.labels, adv_a);
  b.perturb_into(model(), test.images, test.labels, adv_b);
  EXPECT_FALSE(adv_a.equals(adv_b));

  Tensor r0, r1;
  a.perturb_restart_into(model(), test.images, test.labels, 0, r0);
  a.perturb_restart_into(model(), test.images, test.labels, 1, r1);
  EXPECT_FALSE(r0.equals(r1));
  EXPECT_THROW(a.perturb_restart_into(model(), test.images, test.labels, 2,
                                      r0),
               ContractViolation);
}

TEST(RestartPgd, SelectsPerExampleMaxLossRestart) {
  const auto& test = digits().test;
  RestartPgd attack(0.25f, 3, 0.0f, 4, 13);
  Tensor best;
  attack.perturb_into(model(), test.images, test.labels, best);

  Tensor logits;
  std::vector<float> best_loss;
  model().forward_into(best, logits, false);
  per_row_cross_entropy(logits, test.labels, best_loss);

  // The selected batch must dominate every single restart per example.
  for (std::size_t r = 0; r < attack.restarts(); ++r) {
    Tensor candidate;
    attack.perturb_restart_into(model(), test.images, test.labels, r,
                                candidate);
    std::vector<float> loss;
    model().forward_into(candidate, logits, false);
    per_row_cross_entropy(logits, test.labels, loss);
    for (std::size_t i = 0; i < loss.size(); ++i) {
      EXPECT_GE(best_loss[i], loss[i] - 1e-5f)
          << "restart " << r << " beat the selected example " << i;
    }
  }
}

TEST(RestartPgd, StaysInEpsBallAndPixelRange) {
  const auto& test = digits().test;
  const float eps = 0.2f;
  RestartPgd attack(eps, 3, 0.0f, 3);
  Tensor adv;
  attack.perturb_into(model(), test.images, test.labels, adv);
  ASSERT_EQ(adv.numel(), test.images.numel());
  const float* x = test.images.raw();
  const float* a = adv.raw();
  for (std::size_t i = 0; i < adv.numel(); ++i) {
    EXPECT_LE(std::abs(a[i] - x[i]), eps + 1e-5f);
    EXPECT_GE(a[i], kPixelMin - 1e-6f);
    EXPECT_LE(a[i], kPixelMax + 1e-6f);
  }
}

TEST(PerRowCrossEntropy, MatchesHandComputation) {
  Tensor logits(Shape{2, 2});
  float* p = logits.raw();
  p[0] = 0.0f;
  p[1] = 0.0f;  // uniform: loss = log 2
  p[2] = 10.0f;
  p[3] = 0.0f;  // confident row, label 0: loss ~ 0
  std::vector<std::size_t> labels{0, 0};
  std::vector<float> loss;
  per_row_cross_entropy(logits, labels, loss);
  ASSERT_EQ(loss.size(), 2u);
  EXPECT_NEAR(loss[0], std::log(2.0f), 1e-5f);
  EXPECT_NEAR(loss[1], std::log(1.0f + std::exp(-10.0f)), 1e-5f);

  std::vector<std::size_t> bad{0, 2};
  EXPECT_THROW(per_row_cross_entropy(logits, bad, loss), ContractViolation);
}

}  // namespace
}  // namespace satd::attack
