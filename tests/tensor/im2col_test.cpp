#include "tensor/im2col.h"

#include <gtest/gtest.h>

#include "common/contract.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace satd {
namespace {

TEST(ConvGeometry, OutputExtents) {
  ConvGeometry g{1, 28, 28, 3, 0};
  EXPECT_EQ(g.out_h(), 26u);
  EXPECT_EQ(g.out_w(), 26u);
  EXPECT_EQ(g.patch_size(), 9u);

  ConvGeometry padded{2, 5, 5, 3, 1};
  EXPECT_EQ(padded.out_h(), 5u);
  EXPECT_EQ(padded.out_w(), 5u);
  EXPECT_EQ(padded.patch_size(), 18u);
}

TEST(Im2col, IdentityKernelCopiesPixels) {
  // With a 1x1 kernel the columns are the pixels themselves.
  Tensor img(Shape{1, 2, 2}, {1, 2, 3, 4});
  ConvGeometry g{1, 2, 2, 1, 0};
  Tensor cols;
  im2col(img, g, cols);
  EXPECT_EQ(cols.shape(), (Shape{4, 1}));
  EXPECT_TRUE(cols.reshaped(Shape{4}).equals(Tensor(Shape{4}, {1, 2, 3, 4})));
}

TEST(Im2col, ExtractsPatchesRowMajor) {
  // 3x3 image, 2x2 kernel -> 4 patches.
  Tensor img(Shape{1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  ConvGeometry g{1, 3, 3, 2, 0};
  Tensor cols;
  im2col(img, g, cols);
  EXPECT_EQ(cols.shape(), (Shape{4, 4}));
  // Patch at output (0,0) covers pixels {1,2,4,5}.
  EXPECT_EQ(cols.at(0, 0), 1.0f);
  EXPECT_EQ(cols.at(0, 1), 2.0f);
  EXPECT_EQ(cols.at(0, 2), 4.0f);
  EXPECT_EQ(cols.at(0, 3), 5.0f);
  // Patch at output (1,1) covers {5,6,8,9}.
  EXPECT_EQ(cols.at(3, 0), 5.0f);
  EXPECT_EQ(cols.at(3, 3), 9.0f);
}

TEST(Im2col, ZeroPaddingProducesZeros) {
  Tensor img = Tensor::full(Shape{1, 2, 2}, 1.0f);
  ConvGeometry g{1, 2, 2, 3, 1};
  Tensor cols;
  im2col(img, g, cols);
  EXPECT_EQ(cols.shape(), (Shape{4, 9}));
  // Top-left output pixel: its 3x3 patch has the image in the bottom
  // right 2x2, zeros elsewhere.
  EXPECT_EQ(cols.at(0, 0), 0.0f);  // (-1,-1) padding
  EXPECT_EQ(cols.at(0, 4), 1.0f);  // (0,0) image pixel
}

TEST(Im2col, MultiChannelOrdering) {
  // Channel taps must come grouped per channel.
  Tensor img(Shape{2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  ConvGeometry g{2, 2, 2, 2, 0};
  Tensor cols;
  im2col(img, g, cols);
  EXPECT_EQ(cols.shape(), (Shape{1, 8}));
  EXPECT_EQ(cols.at(0, 0), 1.0f);
  EXPECT_EQ(cols.at(0, 3), 4.0f);
  EXPECT_EQ(cols.at(0, 4), 10.0f);
  EXPECT_EQ(cols.at(0, 7), 40.0f);
}

TEST(Im2col, GeometryMismatchThrows) {
  Tensor img(Shape{1, 4, 4});
  ConvGeometry g{1, 5, 5, 3, 0};
  Tensor cols;
  EXPECT_THROW(im2col(img, g, cols), ContractViolation);
}

TEST(Col2im, IsExactAdjointOfIm2col) {
  // Adjoint test: <im2col(x), y> == <x, col2im(y)> for random x, y.
  // This is the property the conv backward pass relies on.
  Rng rng(77);
  for (std::size_t pad : {0u, 1u}) {
    ConvGeometry g{2, 6, 5, 3, pad};
    Tensor x(Shape{2, 6, 5});
    for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1, 1));
    Tensor cols;
    im2col(x, g, cols);
    Tensor y(cols.shape());
    for (float& v : y.data()) v = static_cast<float>(rng.uniform(-1, 1));
    Tensor back;
    col2im(y, g, back);

    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < cols.numel(); ++i) {
      lhs += static_cast<double>(cols[i]) * y[i];
    }
    for (std::size_t i = 0; i < x.numel(); ++i) {
      rhs += static_cast<double>(x[i]) * back[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-3) << "pad=" << pad;
  }
}

TEST(Col2im, AccumulatesOverlappingTaps) {
  // 2x2 image, 2x2 kernel with padding 1 -> each pixel is touched by several
  // patches; columns of all ones must accumulate the tap count.
  ConvGeometry g{1, 2, 2, 2, 1};
  Tensor cols = Tensor::full(Shape{g.out_h() * g.out_w(), g.patch_size()}, 1.0f);
  Tensor img;
  col2im(cols, g, img);
  // Every interior pixel of a 2x2 image under a 2x2 kernel with pad 1 is
  // covered by exactly 4 patches.
  for (float v : img.data()) EXPECT_FLOAT_EQ(v, 4.0f);
}

TEST(Col2im, ShapeMismatchThrows) {
  ConvGeometry g{1, 4, 4, 3, 0};
  Tensor wrong(Shape{3, 9});
  Tensor img;
  EXPECT_THROW(col2im(wrong, g, img), ContractViolation);
}

}  // namespace
}  // namespace satd
