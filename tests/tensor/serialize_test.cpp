#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"

namespace satd {
namespace {

TEST(Serialize, TensorRoundTrip) {
  Rng rng(1);
  Tensor t(Shape{2, 3, 4});
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(-10, 10));
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor back = read_tensor(ss);
  EXPECT_TRUE(back.equals(t));
}

TEST(Serialize, EmptyAndScalarTensors) {
  {
    std::stringstream ss;
    Tensor t(Shape{0});
    write_tensor(ss, t);
    Tensor back = read_tensor(ss);
    EXPECT_EQ(back.shape(), (Shape{0}));
  }
  {
    std::stringstream ss;
    Tensor t(Shape{});
    t[0] = 42.0f;
    write_tensor(ss, t);
    Tensor back = read_tensor(ss);
    EXPECT_EQ(back.shape().rank(), 0u);
    EXPECT_EQ(back[0], 42.0f);
  }
}

TEST(Serialize, MultipleTensorsInOneStream) {
  std::stringstream ss;
  Tensor a(Shape{2}, {1, 2});
  Tensor b(Shape{3}, {3, 4, 5});
  write_tensor(ss, a);
  write_tensor(ss, b);
  EXPECT_TRUE(read_tensor(ss).equals(a));
  EXPECT_TRUE(read_tensor(ss).equals(b));
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss("NOPE and some garbage");
  EXPECT_THROW(read_tensor(ss), SerializeError);
}

TEST(Serialize, TruncatedDataThrows) {
  std::stringstream ss;
  Tensor t(Shape{100});
  write_tensor(ss, t);
  std::string buf = ss.str();
  buf.resize(buf.size() / 2);
  std::stringstream cut(buf);
  EXPECT_THROW(read_tensor(cut), SerializeError);
}

TEST(Serialize, TruncatedHeaderThrows) {
  std::stringstream ss;
  Tensor t(Shape{4});
  write_tensor(ss, t);
  std::string buf = ss.str();
  buf.resize(10);  // magic + version only, partial rank
  std::stringstream cut(buf);
  EXPECT_THROW(read_tensor(cut), SerializeError);
}

TEST(Serialize, StringRoundTrip) {
  std::stringstream ss;
  write_string(ss, "hello world");
  write_string(ss, "");
  write_string(ss, std::string(1000, 'x'));
  EXPECT_EQ(read_string(ss), "hello world");
  EXPECT_EQ(read_string(ss), "");
  EXPECT_EQ(read_string(ss), std::string(1000, 'x'));
}

TEST(Serialize, U64RoundTrip) {
  std::stringstream ss;
  write_u64(ss, 0);
  write_u64(ss, UINT64_MAX);
  write_u64(ss, 0x0123456789ABCDEFULL);
  EXPECT_EQ(read_u64(ss), 0u);
  EXPECT_EQ(read_u64(ss), UINT64_MAX);
  EXPECT_EQ(read_u64(ss), 0x0123456789ABCDEFULL);
}

TEST(Serialize, UnreasonableStringLengthRejected) {
  std::stringstream ss;
  write_u64(ss, 1ull << 40);  // absurd length prefix
  EXPECT_THROW(read_string(ss), SerializeError);
}

namespace {
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
}  // namespace

// Read-compat pin: version-1 records (pre-checksum, no CRC trailer) must
// keep loading byte-for-byte as written by older builds.
TEST(Serialize, Version1TensorStillLoads) {
  const float values[3] = {1.0f, -2.5f, 42.0f};
  std::string bytes = "STSR";
  put_u32(bytes, 1);  // version 1: no trailing CRC
  put_u32(bytes, 1);  // rank
  put_u64(bytes, 3);  // dim
  bytes.append(reinterpret_cast<const char*>(values), sizeof(values));
  std::stringstream ss(bytes);
  const Tensor t = read_tensor(ss);
  EXPECT_EQ(t.shape(), (Shape{3}));
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_EQ(t[1], -2.5f);
  EXPECT_EQ(t[2], 42.0f);
}

TEST(Serialize, Version2ChecksumDetectsCorruptedData) {
  Rng rng(3);
  Tensor t(Shape{5, 5});
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(-1, 1));
  std::stringstream ss;
  write_tensor(ss, t);
  std::string buf = ss.str();
  buf[buf.size() - 10] ^= 0x04;  // flip one bit inside the float data
  std::stringstream corrupted(buf);
  EXPECT_THROW(read_tensor(corrupted), SerializeError);
}

TEST(Serialize, Version2ChecksumDetectsCorruptedDims) {
  std::stringstream ss;
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  write_tensor(ss, t);
  std::string buf = ss.str();
  // Swap the dims (2x3 -> 3x2): same element count, so only the CRC can
  // tell — exactly the silent-garbage case version 2 closes.
  std::swap(buf[12], buf[20]);
  std::stringstream corrupted(buf);
  EXPECT_THROW(read_tensor(corrupted), SerializeError);
}

TEST(Serialize, UnsupportedFutureVersionRejected) {
  std::string bytes = "STSR";
  put_u32(bytes, 3);
  put_u32(bytes, 0);
  std::stringstream ss(bytes);
  EXPECT_THROW(read_tensor(ss), SerializeError);
}

}  // namespace
}  // namespace satd
