// Kernel registry and runtime dispatch: registration invariants, the
// SATD_KERNEL / set_active_kernel resolution rules with their
// warn-and-fall-back hardening, the s8 depth contract, and the
// geometry-checked packing scratch.
#include "tensor/kernel/microkernel.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/contract.h"

namespace satd::kernel {
namespace {

struct KernelGuard {
  ~KernelGuard() { set_active_kernel(""); }
};

TEST(KernelRegistry, ScalarIsCompiledFirstAndAlwaysAvailable) {
  const auto& all = compiled_kernels();
  ASSERT_FALSE(all.empty());
  EXPECT_STREQ(all[0]->name, "scalar");
  EXPECT_TRUE(all[0]->runtime_available());
  EXPECT_GE(all[0]->mr, 1u);
}

TEST(KernelRegistry, NamesAreUniqueAndWellFormed) {
  std::set<std::string> names;
  for (const MicroKernel* k : compiled_kernels()) {
    EXPECT_NE(k->name, nullptr);
    EXPECT_GE(k->mr, 1u);
    EXPECT_NE(k->gemm_panel_f32, nullptr) << k->name;
    EXPECT_NE(k->gemm_panel_s8, nullptr) << k->name;
    EXPECT_TRUE(names.insert(k->name).second) << "duplicate " << k->name;
  }
}

TEST(KernelRegistry, AvailableIsASubsetOfCompiled) {
  std::set<const MicroKernel*> compiled(compiled_kernels().begin(),
                                        compiled_kernels().end());
  for (const MicroKernel* k : available_kernels()) {
    EXPECT_TRUE(compiled.count(k)) << k->name;
    EXPECT_TRUE(k->runtime_available()) << k->name;
  }
}

TEST(KernelRegistry, FindKernelRoundTripsAndRejectsUnknown) {
  for (const MicroKernel* k : compiled_kernels()) {
    EXPECT_EQ(find_kernel(k->name), k);
  }
  EXPECT_EQ(find_kernel("definitely-not-a-kernel"), nullptr);
  EXPECT_EQ(find_kernel(""), nullptr);
}

TEST(KernelDispatch, AutoPickIsCompiledAndAvailable) {
  const MicroKernel* k = find_kernel(auto_kernel_name());
  ASSERT_NE(k, nullptr);
  EXPECT_TRUE(k->runtime_available());
}

TEST(KernelDispatch, SetActiveSelectsByName) {
  KernelGuard guard;
  for (const MicroKernel* k : available_kernels()) {
    EXPECT_TRUE(set_active_kernel(k->name));
    EXPECT_STREQ(active_kernel().name, k->name);
  }
}

TEST(KernelDispatch, UnknownNameWarnsAndFallsBackToAuto) {
  KernelGuard guard;
  // Same hardening shape as ThreadPool::parse_thread_env: a bad value
  // must never throw or abort — it logs one warning and auto-dispatches.
  EXPECT_FALSE(set_active_kernel("bogus-simd-9000"));
  EXPECT_EQ(std::string(active_kernel().name), auto_kernel_name());
}

TEST(KernelDispatch, EmptyNameRestoresEnvironmentResolution) {
  KernelGuard guard;
  ASSERT_TRUE(set_active_kernel("scalar"));
  ASSERT_STREQ(active_kernel().name, "scalar");
  EXPECT_TRUE(set_active_kernel(""));
  EXPECT_EQ(std::string(active_kernel().name), auto_kernel_name());
}

TEST(KernelDispatch, EnvVariableSelectsAndHardensLikeTheSetter) {
  KernelGuard guard;
  // set_active_kernel("") re-runs the SATD_KERNEL resolution, which lets
  // this test exercise the env path without a process restart.
  ASSERT_EQ(setenv("SATD_KERNEL", "scalar", 1), 0);
  ASSERT_TRUE(set_active_kernel(""));
  EXPECT_STREQ(active_kernel().name, "scalar");

  ASSERT_EQ(setenv("SATD_KERNEL", "not-a-kernel", 1), 0);
  ASSERT_TRUE(set_active_kernel(""));
  EXPECT_EQ(std::string(active_kernel().name), auto_kernel_name());

  ASSERT_EQ(unsetenv("SATD_KERNEL"), 0);
  ASSERT_TRUE(set_active_kernel(""));
  EXPECT_EQ(std::string(active_kernel().name), auto_kernel_name());
}

TEST(KernelDispatch, S8DepthBeyondAccumulatorBoundIsRejected) {
  const std::size_t k = kMaxS8Depth + 1;
  std::vector<std::int8_t> a(k, 1);
  std::vector<std::int8_t> b(k, 1);
  std::vector<std::int32_t> c(1);
  EXPECT_THROW(gemm_s8(a.data(), b.data(), 1, 1, k, c.data()),
               ContractViolation);
  // At the bound itself the call must succeed (127 * 127 * kMaxS8Depth
  // fits int32 by construction).
  std::vector<std::int8_t> a2(kMaxS8Depth, 1);
  std::vector<std::int8_t> b2(kMaxS8Depth, 1);
  gemm_s8(a2.data(), b2.data(), 1, 1, kMaxS8Depth, c.data());
  EXPECT_EQ(c[0], static_cast<std::int32_t>(kMaxS8Depth));
}

#ifndef NDEBUG
TEST(KernelDispatch, PackScratchRejectsForeignPanelGeometry) {
  KernelGuard guard;
  ASSERT_TRUE(set_active_kernel("scalar"));
  const std::size_t mr = active_kernel().mr;
  // The active kernel's own geometry is accepted...
  EXPECT_NE(acquire_pack_f32(mr, 8), nullptr);
  EXPECT_NE(acquire_pack_s8(mr, 8), nullptr);
  // ...but a mismatched panel width is a contract violation in debug
  // builds: a 4-row kernel must never reinterpret an 8-row pack layout.
  EXPECT_THROW(acquire_pack_f32(mr + 1, 8), ContractViolation);
  EXPECT_THROW(acquire_pack_s8(mr + 1, 8), ContractViolation);
}
#endif

TEST(KernelDispatch, KernelsDeclareDistinctPanelWidthsSafely) {
  // The dispatch layer must cope with kernels whose mr differ (the AVX2
  // kernel deliberately uses a wider panel). This is a structural pin:
  // if every kernel had one width, the per-kernel scratch geometry path
  // would be dead code.
  KernelGuard guard;
  for (const MicroKernel* k : available_kernels()) {
    ASSERT_TRUE(set_active_kernel(k->name));
    EXPECT_NE(acquire_pack_f32(k->mr, 16), nullptr) << k->name;
  }
}

}  // namespace
}  // namespace satd::kernel
