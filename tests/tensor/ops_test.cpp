#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.h"
#include "common/rng.h"

namespace satd::ops {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, double lo = -1.0, double hi = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

TEST(Elementwise, AddSubMul) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {10, 20, 30});
  EXPECT_TRUE(add(a, b).equals(Tensor(Shape{3}, {11, 22, 33})));
  EXPECT_TRUE(sub(b, a).equals(Tensor(Shape{3}, {9, 18, 27})));
  EXPECT_TRUE(mul(a, b).equals(Tensor(Shape{3}, {10, 40, 90})));
}

TEST(Elementwise, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  Tensor out;
  EXPECT_THROW(add(a, b, out), ContractViolation);
  EXPECT_THROW(sub(a, b, out), ContractViolation);
  EXPECT_THROW(mul(a, b, out), ContractViolation);
  EXPECT_THROW(axpy(1.0f, b, a), ContractViolation);
}

TEST(Elementwise, ScaleAndAxpy) {
  Tensor a(Shape{3}, {1, 2, 3});
  EXPECT_TRUE(scale(a, 2.0f).equals(Tensor(Shape{3}, {2, 4, 6})));
  Tensor acc(Shape{3}, {1, 1, 1});
  axpy(0.5f, a, acc);
  EXPECT_TRUE(acc.equals(Tensor(Shape{3}, {1.5f, 2.0f, 2.5f})));
}

TEST(Elementwise, SignConvention) {
  Tensor a(Shape{4}, {-2.0f, 0.0f, 3.0f, -0.0f});
  Tensor s = sign(a);
  EXPECT_EQ(s[0], -1.0f);
  EXPECT_EQ(s[1], 0.0f);
  EXPECT_EQ(s[2], 1.0f);
  EXPECT_EQ(s[3], 0.0f);
}

TEST(Elementwise, ClampBoundsValues) {
  Tensor a(Shape{4}, {-1.0f, 0.25f, 0.75f, 2.0f});
  Tensor c = clamp(a, 0.0f, 1.0f);
  EXPECT_TRUE(c.equals(Tensor(Shape{4}, {0.0f, 0.25f, 0.75f, 1.0f})));
  Tensor out;
  EXPECT_THROW(clamp(a, 1.0f, 0.0f, out), ContractViolation);
}

TEST(Elementwise, ProjectLinfClipsBallThenRange) {
  Tensor center(Shape{3}, {0.5f, 0.05f, 0.95f});
  Tensor x(Shape{3}, {0.9f, -0.5f, 1.5f});
  project_linf(center, 0.1f, 0.0f, 1.0f, x);
  EXPECT_FLOAT_EQ(x[0], 0.6f);   // ball clip
  EXPECT_FLOAT_EQ(x[1], 0.0f);   // ball clip to -0.05, then range clip to 0
  EXPECT_FLOAT_EQ(x[2], 1.0f);   // ball clip to 1.05, then range clip to 1
}

TEST(Elementwise, ProjectLinfIdentityInsideBall) {
  Tensor center(Shape{2}, {0.5f, 0.5f});
  Tensor x(Shape{2}, {0.52f, 0.48f});
  Tensor orig = x;
  project_linf(center, 0.1f, 0.0f, 1.0f, x);
  EXPECT_TRUE(x.equals(orig));
}

TEST(Reductions, SumMeanNorms) {
  Tensor a(Shape{4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(sum(a), -2.0f);
  EXPECT_FLOAT_EQ(mean(a), -0.5f);
  EXPECT_FLOAT_EQ(l1_norm(a), 10.0f);
  EXPECT_FLOAT_EQ(l2_norm(a), std::sqrt(30.0f));
  EXPECT_FLOAT_EQ(max_abs(a), 4.0f);
}

TEST(Reductions, EmptyTensorEdgeCases) {
  Tensor a(Shape{0});
  EXPECT_FLOAT_EQ(sum(a), 0.0f);
  EXPECT_FLOAT_EQ(mean(a), 0.0f);
  EXPECT_FLOAT_EQ(max_abs(a), 0.0f);
}

TEST(Reductions, MaxAbsDiff) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {1.5f, 1.0f, 3.0f});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
}

TEST(Reductions, Argmax) {
  Tensor a(Shape{4}, {1, 5, 3, 5});
  EXPECT_EQ(argmax(a), 1u);  // first maximum wins
  EXPECT_THROW(argmax(Tensor(Shape{0})), ContractViolation);
}

TEST(Reductions, ArgmaxRows) {
  Tensor a(Shape{2, 3}, {1, 9, 2, 7, 3, 5});
  const auto idx = argmax_rows(a);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);
}

TEST(Matmul, SmallKnownProduct) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_TRUE(c.equals(Tensor(Shape{2, 2}, {58, 64, 139, 154})));
}

TEST(Matmul, InnerDimMismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{2, 2});
  Tensor out;
  EXPECT_THROW(matmul(a, b, out), ContractViolation);
}

TEST(Matmul, IdentityIsNeutral) {
  Rng rng(5);
  Tensor a = random_tensor(Shape{4, 4}, rng);
  Tensor eye(Shape{4, 4});
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  EXPECT_TRUE(matmul(a, eye).allclose(a, 1e-6f));
  EXPECT_TRUE(matmul(eye, a).allclose(a, 1e-6f));
}

TEST(Matmul, TnMatchesExplicitTranspose) {
  Rng rng(7);
  Tensor a = random_tensor(Shape{5, 3}, rng);
  Tensor b = random_tensor(Shape{5, 4}, rng);
  Tensor expected = matmul(transpose(a), b);
  EXPECT_TRUE(matmul_tn(a, b).allclose(expected, 1e-5f));
}

TEST(Matmul, NtMatchesExplicitTranspose) {
  Rng rng(9);
  Tensor a = random_tensor(Shape{5, 3}, rng);
  Tensor b = random_tensor(Shape{4, 3}, rng);
  Tensor expected = matmul(a, transpose(b));
  EXPECT_TRUE(matmul_nt(a, b).allclose(expected, 1e-5f));
}

TEST(Matmul, AssociativityHoldsNumerically) {
  Rng rng(11);
  Tensor a = random_tensor(Shape{3, 4}, rng);
  Tensor b = random_tensor(Shape{4, 5}, rng);
  Tensor c = random_tensor(Shape{5, 2}, rng);
  Tensor left = matmul(matmul(a, b), c);
  Tensor right = matmul(a, matmul(b, c));
  EXPECT_TRUE(left.allclose(right, 1e-4f));
}

TEST(Matmul, RowBiasAndSumRows) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias(Shape{3}, {10, 20, 30});
  Tensor out;
  add_row_bias(a, bias, out);
  EXPECT_TRUE(out.equals(Tensor(Shape{2, 3}, {11, 22, 33, 14, 25, 36})));
  Tensor sums;
  sum_rows(a, sums);
  EXPECT_TRUE(sums.equals(Tensor(Shape{3}, {5, 7, 9})));
}

TEST(Matmul, TransposeInvolution) {
  Rng rng(13);
  Tensor a = random_tensor(Shape{3, 7}, rng);
  EXPECT_TRUE(transpose(transpose(a)).equals(a));
}

// Property sweep: matmul against a naive triple loop across sizes.
struct MatmulDims {
  std::size_t m, k, n;
};

class MatmulPropertyTest : public ::testing::TestWithParam<MatmulDims> {};

TEST_P(MatmulPropertyTest, MatchesNaiveTripleLoop) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 100 + n);
  Tensor a = random_tensor(Shape{m, k}, rng);
  Tensor b = random_tensor(Shape{k, n}, rng);
  Tensor naive(Shape{m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
      }
      naive.at(i, j) = static_cast<float>(acc);
    }
  }
  EXPECT_TRUE(matmul(a, b).allclose(naive, 1e-4f));
  EXPECT_TRUE(matmul_tn(transpose(a), b).allclose(naive, 1e-4f));
  EXPECT_TRUE(matmul_nt(a, transpose(b)).allclose(naive, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatmulPropertyTest,
    ::testing::Values(MatmulDims{1, 1, 1}, MatmulDims{1, 7, 3},
                      MatmulDims{5, 1, 5}, MatmulDims{8, 8, 8},
                      MatmulDims{13, 17, 11}, MatmulDims{32, 20, 24}));

}  // namespace
}  // namespace satd::ops
