#include "tensor/workspace.h"

#include <gtest/gtest.h>

#include "common/contract.h"

namespace satd {
namespace {

TEST(Workspace, FirstGetAllocatesAtRequestedShape) {
  Workspace ws;
  Tensor& t = ws.get("a", Shape{2, 3});
  EXPECT_EQ(t.shape(), (Shape{2, 3}));
  EXPECT_EQ(ws.size(), 1u);
  EXPECT_TRUE(ws.has("a"));
  EXPECT_FALSE(ws.has("b"));
}

TEST(Workspace, SameShapeGetReturnsSameBufferUntouched) {
  Workspace ws;
  Tensor& t = ws.get("a", Shape{4});
  t.fill(7.0f);
  const float* data = t.raw();
  Tensor& again = ws.get("a", Shape{4});
  EXPECT_EQ(&t, &again);
  EXPECT_EQ(again.raw(), data);  // no reallocation
  for (float v : again.data()) EXPECT_EQ(v, 7.0f);
}

TEST(Workspace, ShapeChangeResizesInPlace) {
  Workspace ws;
  Tensor& t = ws.get("a", Shape{8, 8});
  const float* data = t.raw();
  Tensor& shrunk = ws.get("a", Shape{2, 2});
  EXPECT_EQ(&t, &shrunk);
  EXPECT_EQ(shrunk.shape(), (Shape{2, 2}));
  // Shrinking fits within existing capacity: storage is reused.
  EXPECT_EQ(shrunk.raw(), data);
  EXPECT_EQ(ws.size(), 1u);
}

TEST(Workspace, ReferencesSurviveFurtherInsertions) {
  Workspace ws;
  Tensor& a = ws.get("a", Shape{3});
  a.fill(1.5f);
  // Enough insertions to force a rehash of any reasonable initial
  // bucket count; node-based storage must keep `a` valid.
  for (int i = 0; i < 100; ++i) {
    ws.get("buf" + std::to_string(i), Shape{1});
  }
  EXPECT_EQ(ws.size(), 101u);
  for (float v : a.data()) EXPECT_EQ(v, 1.5f);
}

TEST(Workspace, GetZeroedClearsPreviousContents) {
  Workspace ws;
  ws.get("a", Shape{5}).fill(3.0f);
  Tensor& z = ws.get_zeroed("a", Shape{5});
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Workspace, AtReadsExistingAndThrowsOnMissing) {
  Workspace ws;
  ws.get("a", Shape{2}).fill(9.0f);
  const Workspace& cws = ws;
  EXPECT_EQ(cws.at("a").numel(), 2u);
  EXPECT_THROW(cws.at("missing"), ContractViolation);
}

TEST(Workspace, TotalElementsSumsAllBuffers) {
  Workspace ws;
  ws.get("a", Shape{2, 3});
  ws.get("b", Shape{4});
  EXPECT_EQ(ws.total_elements(), 10u);
}

TEST(Workspace, ClearReleasesEverythingAndBuffersRegrow) {
  Workspace ws;
  ws.get("a", Shape{2});
  ws.clear();
  EXPECT_EQ(ws.size(), 0u);
  EXPECT_FALSE(ws.has("a"));
  Tensor& t = ws.get("a", Shape{6});
  EXPECT_EQ(t.shape(), (Shape{6}));
}

}  // namespace
}  // namespace satd
