#include "tensor/stats.h"

#include <gtest/gtest.h>

#include "common/contract.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace satd::stats {
namespace {

TEST(Stats, ColumnMeanSmallCase) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 3, 4, 5});
  Tensor mu = column_mean(a);
  EXPECT_TRUE(mu.equals(Tensor(Shape{3}, {2, 3, 4})));
}

TEST(Stats, ColumnMeanRequiresRows) {
  Tensor empty(Shape{0, 3});
  EXPECT_THROW(column_mean(empty), ContractViolation);
}

TEST(Stats, CenterRowsHasZeroColumnMean) {
  Rng rng(3);
  Tensor a(Shape{7, 4});
  for (float& v : a.data()) v = static_cast<float>(rng.uniform(-5, 5));
  Tensor centered = center_rows(a);
  Tensor mu = column_mean(centered);
  for (float v : mu.data()) EXPECT_NEAR(v, 0.0f, 1e-5f);
}

TEST(Stats, CovarianceOfKnownData) {
  // Two columns, perfectly anti-correlated.
  Tensor a(Shape{3, 2}, {1, -1, 2, -2, 3, -3});
  Tensor cov = covariance(a);
  EXPECT_EQ(cov.shape(), (Shape{2, 2}));
  EXPECT_NEAR(cov.at(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(cov.at(1, 1), 1.0f, 1e-5f);
  EXPECT_NEAR(cov.at(0, 1), -1.0f, 1e-5f);
  EXPECT_NEAR(cov.at(1, 0), -1.0f, 1e-5f);
}

TEST(Stats, CovarianceIsSymmetric) {
  Rng rng(5);
  Tensor a(Shape{10, 5});
  for (float& v : a.data()) v = static_cast<float>(rng.uniform(-1, 1));
  Tensor cov = covariance(a);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(cov.at(i, j), cov.at(j, i), 1e-5f);
    }
  }
}

TEST(Stats, CovarianceDiagonalNonNegative) {
  Rng rng(7);
  Tensor a(Shape{16, 6});
  for (float& v : a.data()) v = static_cast<float>(rng.normal(0.0, 2.0));
  Tensor cov = covariance(a);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_GE(cov.at(i, i), -1e-6f);
}

TEST(Stats, CovarianceNeedsTwoRows) {
  Tensor one(Shape{1, 3}, {1, 2, 3});
  EXPECT_THROW(covariance(one), ContractViolation);
}

TEST(Stats, MmdZeroForIdenticalBatches) {
  Rng rng(9);
  Tensor a(Shape{8, 4});
  for (float& v : a.data()) v = static_cast<float>(rng.uniform(-1, 1));
  EXPECT_NEAR(mmd_l1(a, a), 0.0f, 1e-6f);
}

TEST(Stats, MmdDetectsMeanShift) {
  Tensor a = Tensor::full(Shape{4, 3}, 0.0f);
  Tensor b = Tensor::full(Shape{4, 3}, 1.0f);
  EXPECT_NEAR(mmd_l1(a, b), 1.0f, 1e-6f);
}

TEST(Stats, MmdIsSymmetric) {
  Rng rng(11);
  Tensor a(Shape{6, 4}), b(Shape{9, 4});
  for (float& v : a.data()) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : b.data()) v = static_cast<float>(rng.uniform(-1, 1));
  EXPECT_NEAR(mmd_l1(a, b), mmd_l1(b, a), 1e-6f);
}

TEST(Stats, CoralZeroForIdenticalBatches) {
  Rng rng(13);
  Tensor a(Shape{8, 4});
  for (float& v : a.data()) v = static_cast<float>(rng.uniform(-1, 1));
  EXPECT_NEAR(coral_l1(a, a), 0.0f, 1e-6f);
}

TEST(Stats, CoralDetectsVarianceMismatch) {
  // Same means, different spread.
  Tensor a(Shape{4, 1}, {-1, 1, -1, 1});
  Tensor b(Shape{4, 1}, {-3, 3, -3, 3});
  EXPECT_GT(coral_l1(a, b), 1.0f);
  EXPECT_NEAR(mmd_l1(a, b), 0.0f, 1e-6f);  // MMD is blind to this
}

TEST(Stats, CoralIgnoresPureMeanShift) {
  // Covariance is translation invariant.
  Rng rng(17);
  Tensor a(Shape{10, 3});
  for (float& v : a.data()) v = static_cast<float>(rng.uniform(-1, 1));
  Tensor b = a;
  for (float& v : b.data()) v += 5.0f;
  EXPECT_NEAR(coral_l1(a, b), 0.0f, 1e-4f);
  EXPECT_GT(mmd_l1(a, b), 4.9f);  // MMD sees it instead
}

TEST(Stats, DimensionMismatchThrows) {
  Tensor a(Shape{4, 3});
  Tensor b(Shape{4, 2});
  EXPECT_THROW(mmd_l1(a, b), ContractViolation);
  EXPECT_THROW(coral_l1(a, b), ContractViolation);
}

}  // namespace
}  // namespace satd::stats
