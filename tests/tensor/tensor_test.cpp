#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "common/contract.h"

namespace satd {
namespace {

TEST(Shape, NumelAndRank) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s[2], 4u);
}

TEST(Shape, EmptyShapeIsScalarLike) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1u);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_EQ((Shape{2, 3}).to_string(), "[2, 3]");
}

TEST(Shape, IndexOutOfRangeThrows) {
  Shape s{2};
  EXPECT_THROW(s[1], ContractViolation);
}

TEST(Tensor, DefaultConstructedIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 4});
  EXPECT_EQ(t.numel(), 12u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, ConstructFromDataChecksSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), ContractViolation);
}

TEST(Tensor, FullFillsValue) {
  Tensor t = Tensor::full(Shape{5}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, FlatIndexingBoundsChecked) {
  Tensor t(Shape{2, 2});
  t[3] = 7.0f;
  EXPECT_EQ(t[3], 7.0f);
  EXPECT_THROW(t[4], ContractViolation);
}

TEST(Tensor, MultiDimAccess) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t[1 * 3 + 2], 9.0f);
  EXPECT_EQ(t.at(1, 2), 9.0f);
  EXPECT_THROW(t.at(2, 0), ContractViolation);
  EXPECT_THROW(t.at(0), ContractViolation);  // wrong rank
}

TEST(Tensor, Rank4Access) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 1.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 1.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped(Shape{4}), ContractViolation);
}

TEST(Tensor, SliceRowExtractsTrailingDims) {
  Tensor t(Shape{2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor row = t.slice_row(1);
  EXPECT_EQ(row.shape(), (Shape{2, 2}));
  EXPECT_EQ(row.at(0, 0), 5.0f);
  EXPECT_EQ(row.at(1, 1), 8.0f);
  EXPECT_THROW(t.slice_row(2), ContractViolation);
}

TEST(Tensor, SetRowRoundTripsWithSliceRow) {
  Tensor t(Shape{3, 4});
  Tensor row(Shape{4}, {1, 2, 3, 4});
  t.set_row(1, row);
  EXPECT_TRUE(t.slice_row(1).equals(row.reshaped(Shape{4})));
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.at(2, 3), 0.0f);
}

TEST(Tensor, SetRowRejectsWrongSize) {
  Tensor t(Shape{3, 4});
  Tensor bad(Shape{3});
  EXPECT_THROW(t.set_row(0, bad), ContractViolation);
}

TEST(Tensor, EqualsIsExact) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b(Shape{2}, {1.0f, 2.0f});
  Tensor c(Shape{2}, {1.0f, 2.000001f});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
}

TEST(Tensor, AllcloseUsesTolerance) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor c(Shape{2}, {1.0f, 2.00001f});
  EXPECT_TRUE(a.allclose(c, 1e-4f));
  EXPECT_FALSE(a.allclose(c, 1e-6f));
  Tensor d(Shape{1}, {1.0f});
  EXPECT_FALSE(a.allclose(d));  // shape mismatch
}

TEST(Tensor, ToStringTruncates) {
  Tensor t(Shape{100});
  const std::string s = t.to_string(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[100]"), std::string::npos);
}

}  // namespace
}  // namespace satd
