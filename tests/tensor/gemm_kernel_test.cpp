// Validates the blocked, packed GEMM against a naive reference over odd,
// degenerate and empty shapes — for EVERY microkernel compiled into this
// binary — pins the no-zero-skip NaN/Inf propagation contract, the
// cross-kernel f32 bit-identity contract, the exact int8 path, and
// thread-count invariance of the results under each kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/kernel/microkernel.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace satd {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(-1, 1));
  return t;
}

/// Restores SATD_KERNEL/auto dispatch when a test that pins a specific
/// kernel leaves scope (even via an assertion failure).
struct KernelGuard {
  ~KernelGuard() { kernel::set_active_kernel(""); }
};

std::vector<std::int8_t> random_s8(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int8_t> v(n);
  for (auto& x : v) {
    x = static_cast<std::int8_t>(static_cast<long>(rng.uniform(-127, 127)));
  }
  return v;
}

/// Reference int8 GEMM: exact int32 accumulation, any order (integer
/// addition is associative, so order is irrelevant here).
std::vector<std::int32_t> naive_s8(const std::vector<std::int8_t>& a,
                                   const std::vector<std::int8_t>& b,
                                   std::size_t m, std::size_t n,
                                   std::size_t k) {
  std::vector<std::int32_t> c(m * n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(a[i * k + kk]) *
               static_cast<std::int32_t>(b[kk * n + j]);
      }
      c[i * n + j] = acc;
    }
  }
  return c;
}

/// Reference GEMM: the scalar i-j-k triple loop, float accumulation in
/// increasing k order (the documented accumulator policy of ops.h).
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  const std::size_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a.at(i, kk) * b.at(kk, j);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

class GemmShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeSweep, AllKernelsMatchNaiveReference) {
  const auto [mi, ni, ki] = GetParam();
  const auto m = static_cast<std::size_t>(mi);
  const auto n = static_cast<std::size_t>(ni);
  const auto k = static_cast<std::size_t>(ki);
  const Tensor a = random_tensor(Shape{m, k}, 1000 + m * 31 + n * 7 + k);
  const Tensor b = random_tensor(Shape{k, n}, 2000 + m + n * 13 + k * 5);
  const Tensor at = ops::transpose(a);
  const Tensor bt = ops::transpose(b);
  const Tensor expected = naive_matmul(a, b);

  KernelGuard guard;
  for (const kernel::MicroKernel* kern : kernel::available_kernels()) {
    ASSERT_TRUE(kernel::set_active_kernel(kern->name));
    EXPECT_TRUE(ops::matmul(a, b).allclose(expected, 1e-4f))
        << kern->name << " matmul " << m << "x" << k << "x" << n;
    EXPECT_TRUE(ops::matmul_tn(at, b).allclose(expected, 1e-4f))
        << kern->name << " matmul_tn " << m << "x" << k << "x" << n;
    EXPECT_TRUE(ops::matmul_nt(a, bt).allclose(expected, 1e-4f))
        << kern->name << " matmul_nt " << m << "x" << k << "x" << n;
  }
}

// The accumulation contract (single-rounded mul + add, strictly
// increasing k, one accumulator per output element) makes every SIMD
// variant produce the scalar kernel's results bit-for-bit — which is
// what lets auto-dispatch change the kernel without invalidating any
// pinned golden value in the suite.
TEST_P(GemmShapeSweep, SimdKernelsBitIdenticalToScalar) {
  const auto [mi, ni, ki] = GetParam();
  const auto m = static_cast<std::size_t>(mi);
  const auto n = static_cast<std::size_t>(ni);
  const auto k = static_cast<std::size_t>(ki);
  const Tensor a = random_tensor(Shape{m, k}, 5000 + m * 31 + n * 7 + k);
  const Tensor b = random_tensor(Shape{k, n}, 6000 + m + n * 13 + k * 5);
  const Tensor at = ops::transpose(a);
  const Tensor bt = ops::transpose(b);

  KernelGuard guard;
  ASSERT_TRUE(kernel::set_active_kernel("scalar"));
  const Tensor ref = ops::matmul(a, b);
  const Tensor ref_tn = ops::matmul_tn(at, b);
  const Tensor ref_nt = ops::matmul_nt(a, bt);
  for (const kernel::MicroKernel* kern : kernel::available_kernels()) {
    ASSERT_TRUE(kernel::set_active_kernel(kern->name));
    EXPECT_TRUE(ops::matmul(a, b).equals(ref))
        << kern->name << " " << m << "x" << k << "x" << n;
    EXPECT_TRUE(ops::matmul_tn(at, b).equals(ref_tn))
        << kern->name << " tn " << m << "x" << k << "x" << n;
    EXPECT_TRUE(ops::matmul_nt(a, bt).equals(ref_nt))
        << kern->name << " nt " << m << "x" << k << "x" << n;
  }
}

TEST_P(GemmShapeSweep, Int8KernelsExactlyMatchNaiveReference) {
  const auto [mi, ni, ki] = GetParam();
  const auto m = static_cast<std::size_t>(mi);
  const auto n = static_cast<std::size_t>(ni);
  const auto k = static_cast<std::size_t>(ki);
  const auto a = random_s8(m * k, 300 + m * 31 + n * 7 + k);
  const auto b = random_s8(k * n, 400 + m + n * 13 + k * 5);
  const auto expected = naive_s8(a, b, m, n, k);

  KernelGuard guard;
  std::vector<std::int32_t> c(m * n);
  for (const kernel::MicroKernel* kern : kernel::available_kernels()) {
    ASSERT_TRUE(kernel::set_active_kernel(kern->name));
    std::fill(c.begin(), c.end(), -1);
    kernel::gemm_s8(a.data(), b.data(), m, n, k, c.data());
    EXPECT_EQ(c, expected)
        << kern->name << " s8 " << m << "x" << k << "x" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OddAndBlockedSizes, GemmShapeSweep,
    ::testing::Combine(::testing::Values(1, 3, 7, 17, 64, 65),
                       ::testing::Values(1, 3, 7, 17, 64, 65),
                       ::testing::Values(1, 3, 7, 17, 64, 65)));

TEST(GemmKernel, EmptyDimensionsProduceEmptyOrZeroOutputs) {
  // k = 0: the contraction is empty, so C must be all zeros.
  const Tensor a(Shape{3, 0});
  const Tensor b(Shape{0, 4});
  Tensor c = ops::matmul(a, b);
  ASSERT_EQ(c.shape(), (Shape{3, 4}));
  for (float v : c.data()) EXPECT_EQ(v, 0.0f);
  c = ops::matmul_tn(Tensor(Shape{0, 3}), b);
  ASSERT_EQ(c.shape(), (Shape{3, 4}));
  for (float v : c.data()) EXPECT_EQ(v, 0.0f);
  c = ops::matmul_nt(a, Tensor(Shape{4, 0}));
  ASSERT_EQ(c.shape(), (Shape{3, 4}));
  for (float v : c.data()) EXPECT_EQ(v, 0.0f);

  // m = 0 and n = 0: zero-element outputs, no crash.
  EXPECT_EQ(ops::matmul(Tensor(Shape{0, 5}), random_tensor(Shape{5, 4}, 1))
                .numel(),
            0u);
  EXPECT_EQ(ops::matmul(random_tensor(Shape{4, 5}, 2), Tensor(Shape{5, 0}))
                .numel(),
            0u);
}

// Regression for the seed kernels' `if (av == 0.0f) continue;`
// short-circuit: skipping zero multiplicands silently suppressed
// 0 * inf = NaN. The packed kernels must propagate non-finite operands
// exactly as IEEE arithmetic dictates.
TEST(GemmKernel, ZeroTimesInfPropagatesNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a(Shape{2, 2});
  a.at(0, 0) = 0.0f;
  a.at(0, 1) = 1.0f;
  a.at(1, 0) = 2.0f;
  a.at(1, 1) = 3.0f;
  Tensor b(Shape{2, 2});
  b.at(0, 0) = inf;
  b.at(0, 1) = 1.0f;
  b.at(1, 0) = 1.0f;
  b.at(1, 1) = 1.0f;

  // c[0,0] = 0 * inf + 1 * 1 -> NaN; c[1,0] = 2 * inf + 3 -> inf.
  KernelGuard guard;
  for (const kernel::MicroKernel* kern : kernel::available_kernels()) {
    ASSERT_TRUE(kernel::set_active_kernel(kern->name));
    const Tensor c = ops::matmul(a, b);
    EXPECT_TRUE(std::isnan(c.at(0, 0))) << kern->name;
    EXPECT_TRUE(std::isinf(c.at(1, 0))) << kern->name;
    EXPECT_FLOAT_EQ(c.at(0, 1), 1.0f) << kern->name;

    const Tensor c_tn = ops::matmul_tn(ops::transpose(a), b);
    EXPECT_TRUE(std::isnan(c_tn.at(0, 0))) << kern->name;
    EXPECT_TRUE(std::isinf(c_tn.at(1, 0))) << kern->name;

    const Tensor c_nt = ops::matmul_nt(a, ops::transpose(b));
    EXPECT_TRUE(std::isnan(c_nt.at(0, 0))) << kern->name;
    EXPECT_TRUE(std::isinf(c_nt.at(1, 0))) << kern->name;
  }
}

TEST(GemmKernel, NaNOperandPoisonsItsRow) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a = random_tensor(Shape{3, 4}, 7);
  a.at(1, 2) = nan;
  const Tensor b = random_tensor(Shape{4, 3}, 8);
  KernelGuard guard;
  for (const kernel::MicroKernel* kern : kernel::available_kernels()) {
    ASSERT_TRUE(kernel::set_active_kernel(kern->name));
    const Tensor c = ops::matmul(a, b);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_TRUE(std::isnan(c.at(1, j))) << kern->name << " col " << j;
      EXPECT_FALSE(std::isnan(c.at(0, j))) << kern->name << " col " << j;
      EXPECT_FALSE(std::isnan(c.at(2, j))) << kern->name << " col " << j;
    }
  }
}

// The row-panel-only work decomposition makes results bit-identical for
// any thread count UNDER ANY FIXED KERNEL; this is the kernel-level half
// of the determinism contract (tests/parallel/determinism_test.cpp pins
// the training side).
TEST(GemmKernel, ResultsBitIdenticalAcrossThreadCountsForEveryKernel) {
  const Tensor a = random_tensor(Shape{65, 37}, 21);
  const Tensor b = random_tensor(Shape{37, 53}, 22);
  const Tensor at = ops::transpose(a);
  const Tensor bt = ops::transpose(b);
  const auto as8 = random_s8(65 * 37, 23);
  const auto bs8 = random_s8(37 * 53, 24);

  KernelGuard guard;
  for (const kernel::MicroKernel* kern : kernel::available_kernels()) {
    ASSERT_TRUE(kernel::set_active_kernel(kern->name));
    ThreadPool::set_global_threads(1);
    const Tensor c1 = ops::matmul(a, b);
    const Tensor c1_tn = ops::matmul_tn(at, b);
    const Tensor c1_nt = ops::matmul_nt(a, bt);
    std::vector<std::int32_t> s1(65 * 53);
    kernel::gemm_s8(as8.data(), bs8.data(), 65, 53, 37, s1.data());
    for (std::size_t threads : {2u, 4u}) {
      ThreadPool::set_global_threads(threads);
      EXPECT_TRUE(ops::matmul(a, b).equals(c1))
          << kern->name << " " << threads << " threads";
      EXPECT_TRUE(ops::matmul_tn(at, b).equals(c1_tn))
          << kern->name << " " << threads << " threads";
      EXPECT_TRUE(ops::matmul_nt(a, bt).equals(c1_nt))
          << kern->name << " " << threads << " threads";
      std::vector<std::int32_t> sn(65 * 53);
      kernel::gemm_s8(as8.data(), bs8.data(), 65, 53, 37, sn.data());
      EXPECT_EQ(sn, s1) << kern->name << " s8 " << threads << " threads";
    }
    ThreadPool::set_global_threads(0);  // restore the environment default
  }
}

}  // namespace
}  // namespace satd
