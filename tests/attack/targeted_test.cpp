#include "attack/targeted.h"

#include <gtest/gtest.h>

#include "attack_test_util.h"
#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::attack {
namespace {

using testing::test_batch;
using testing::test_labels;
using testing::trained_model;

TEST(Targeted, LeastLikelyLabelsAreValidAndNotThePrediction) {
  const Tensor x = test_batch(16);
  const auto ll = least_likely_labels(trained_model(), x);
  const Tensor logits = trained_model().forward(x, false);
  const auto preds = ops::argmax_rows(logits);
  ASSERT_EQ(ll.size(), 16u);
  for (std::size_t i = 0; i < ll.size(); ++i) {
    EXPECT_LT(ll[i], 10u);
    EXPECT_NE(ll[i], preds[i]);  // argmin != argmax for 10 logits
  }
}

TEST(Targeted, NextClassPolicyWrapsAround) {
  const Tensor x = test_batch(4);
  std::vector<std::size_t> labels{0, 5, 9, 3};
  const auto targets = resolve_targets(trained_model(), x, labels, 10,
                                       TargetPolicy::kNextClass);
  EXPECT_EQ(targets, (std::vector<std::size_t>{1, 6, 0, 4}));
}

TEST(Targeted, FgsmStaysInBallAndRange) {
  TargetedFgsm attack(0.2f, 10);
  const Tensor x = test_batch(12);
  const Tensor adv = attack.perturb(trained_model(), x, test_labels(12));
  EXPECT_LE(ops::max_abs_diff(adv, x), 0.2f + 1e-5f);
  for (float v : adv.data()) {
    EXPECT_GE(v, kPixelMin);
    EXPECT_LE(v, kPixelMax);
  }
}

TEST(Targeted, BimStaysInBallAndRange) {
  TargetedBim attack(0.2f, 6, 0.05f, 10);
  const Tensor x = test_batch(12);
  const Tensor adv = attack.perturb(trained_model(), x, test_labels(12));
  EXPECT_LE(ops::max_abs_diff(adv, x), 0.2f + 1e-5f);
  for (float v : adv.data()) {
    EXPECT_GE(v, kPixelMin);
    EXPECT_LE(v, kPixelMax);
  }
}

TEST(Targeted, StepDecreasesTargetLoss) {
  // One targeted step must lower the cross-entropy towards the target.
  nn::Sequential& model = trained_model();
  const Tensor x = test_batch(24);
  const auto labels = test_labels(24);
  const auto targets =
      resolve_targets(model, x, labels, 10, TargetPolicy::kLeastLikely);
  const float before = nn::softmax_cross_entropy_value(
      model.forward(x, false), targets);
  const Tensor adv = targeted_step(model, x, x, targets, 0.1f, 0.1f);
  const float after = nn::softmax_cross_entropy_value(
      model.forward(adv, false), targets);
  EXPECT_LT(after, before);
}

TEST(Targeted, IterativeAttackReachesTargetsAtLargeBudget) {
  // With eps=0.3 and 10 iterations against an undefended model, a
  // substantial fraction of examples should land ON the target class
  // (not merely off the true one).
  nn::Sequential& model = trained_model();
  const Tensor x = test_batch(40);
  const auto labels = test_labels(40);
  TargetedBim attack(0.3f, 10, 0.03f, 10);
  const Tensor adv = attack.perturb(model, x, labels);
  const float success = targeted_success_rate(model, x, adv, labels, 10,
                                              TargetPolicy::kLeastLikely);
  EXPECT_GT(success, 0.3f);
}

TEST(Targeted, SuccessRateIsLowOnCleanImages) {
  nn::Sequential& model = trained_model();
  const Tensor x = test_batch(40);
  const auto labels = test_labels(40);
  // "Adversarial" = clean: the model predicts its argmax, which is never
  // the least-likely class.
  const float success = targeted_success_rate(model, x, x, labels, 10,
                                              TargetPolicy::kLeastLikely);
  EXPECT_LT(success, 0.15f);
}

TEST(Targeted, ValidatesArguments) {
  EXPECT_THROW(TargetedFgsm(-0.1f, 10), ContractViolation);
  EXPECT_THROW(TargetedFgsm(0.1f, 1), ContractViolation);
  EXPECT_THROW(TargetedBim(0.1f, 0, 0.01f, 10), ContractViolation);
  EXPECT_THROW(TargetedBim(0.1f, 5, -0.01f, 10), ContractViolation);
}

TEST(Targeted, NamesDescribePolicy) {
  EXPECT_NE(TargetedFgsm(0.1f, 10, TargetPolicy::kLeastLikely)
                .name()
                .find("least-likely"),
            std::string::npos);
  EXPECT_NE(TargetedFgsm(0.1f, 10, TargetPolicy::kNextClass)
                .name()
                .find("next-class"),
            std::string::npos);
}

}  // namespace
}  // namespace satd::attack
