// Property-based invariants every attack in the library must satisfy,
// swept across attack kinds and eps budgets via parameterized gtest.
#include <gtest/gtest.h>

#include <memory>

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "attack/mifgsm.h"
#include "attack/pgd.h"
#include "attack_test_util.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::attack {
namespace {

using testing::test_batch;
using testing::test_labels;
using testing::trained_model;

struct AttackCase {
  std::string kind;
  float eps;
};

AttackPtr make_attack(const AttackCase& c) {
  static Rng rng(99);
  if (c.kind == "fgsm") return std::make_unique<Fgsm>(c.eps);
  if (c.kind == "bim") return std::make_unique<Bim>(c.eps, 5);
  if (c.kind == "pgd") {
    return std::make_unique<Pgd>(c.eps, 5, c.eps / 3.0f, rng);
  }
  if (c.kind == "mifgsm") {
    return std::make_unique<MiFgsm>(c.eps, 5, c.eps / 3.0f);
  }
  ADD_FAILURE() << "unknown attack kind " << c.kind;
  return nullptr;
}

class AttackPropertyTest : public ::testing::TestWithParam<AttackCase> {};

TEST_P(AttackPropertyTest, OutputShapeMatchesInput) {
  auto attack = make_attack(GetParam());
  const Tensor x = test_batch(9);
  const Tensor adv = attack->perturb(trained_model(), x, test_labels(9));
  EXPECT_EQ(adv.shape(), x.shape());
}

TEST_P(AttackPropertyTest, EpsBallContainment) {
  auto attack = make_attack(GetParam());
  const Tensor x = test_batch(9);
  const Tensor adv = attack->perturb(trained_model(), x, test_labels(9));
  EXPECT_LE(ops::max_abs_diff(adv, x), GetParam().eps + 1e-5f);
}

TEST_P(AttackPropertyTest, PixelRangeContainment) {
  auto attack = make_attack(GetParam());
  const Tensor x = test_batch(9);
  const Tensor adv = attack->perturb(trained_model(), x, test_labels(9));
  for (float v : adv.data()) {
    EXPECT_GE(v, kPixelMin);
    EXPECT_LE(v, kPixelMax);
  }
}

TEST_P(AttackPropertyTest, EpsilonAccessorMatches) {
  auto attack = make_attack(GetParam());
  EXPECT_FLOAT_EQ(attack->epsilon(), GetParam().eps);
}

TEST_P(AttackPropertyTest, DoesNotMutateInput) {
  auto attack = make_attack(GetParam());
  const Tensor x = test_batch(9);
  const Tensor copy = x;
  attack->perturb(trained_model(), x, test_labels(9));
  EXPECT_TRUE(x.equals(copy));
}

TEST_P(AttackPropertyTest, ParameterGradientsLeftZero) {
  auto attack = make_attack(GetParam());
  nn::Sequential& model = trained_model();
  attack->perturb(model, test_batch(4), test_labels(4));
  for (Tensor* g : model.gradients()) {
    for (float v : g->data()) EXPECT_EQ(v, 0.0f);
  }
}

TEST_P(AttackPropertyTest, ModelParametersUntouched) {
  auto attack = make_attack(GetParam());
  nn::Sequential& model = trained_model();
  std::vector<Tensor> before;
  for (Tensor* p : model.parameters()) before.push_back(*p);
  attack->perturb(model, test_batch(4), test_labels(4));
  const auto params = model.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(params[i]->equals(before[i])) << "parameter " << i;
  }
}

TEST_P(AttackPropertyTest, ReducesAccuracyAtLargeEps) {
  if (GetParam().eps < 0.25f) GTEST_SKIP() << "only meaningful at large eps";
  auto attack = make_attack(GetParam());
  nn::Sequential& model = trained_model();
  const Tensor x = test_batch(40);
  const auto labels = test_labels(40);
  const float clean_acc =
      nn::accuracy(model.forward(x, false), labels);
  const Tensor adv = attack->perturb(model, x, labels);
  const float adv_acc = nn::accuracy(model.forward(adv, false), labels);
  EXPECT_LT(adv_acc, clean_acc);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndBudgets, AttackPropertyTest,
    ::testing::Values(AttackCase{"fgsm", 0.05f}, AttackCase{"fgsm", 0.3f},
                      AttackCase{"bim", 0.05f}, AttackCase{"bim", 0.3f},
                      AttackCase{"pgd", 0.05f}, AttackCase{"pgd", 0.3f},
                      AttackCase{"mifgsm", 0.05f},
                      AttackCase{"mifgsm", 0.3f}),
    [](const ::testing::TestParamInfo<AttackCase>& info) {
      return info.param.kind + "_eps" +
             std::to_string(static_cast<int>(info.param.eps * 100));
    });

}  // namespace
}  // namespace satd::attack
