#include "attack/bim.h"

#include <gtest/gtest.h>

#include "attack/fgsm.h"
#include "attack_test_util.h"
#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::attack {
namespace {

using testing::test_batch;
using testing::test_labels;
using testing::trained_model;

TEST(Bim, PaperConventionSetsStepToEpsOverN) {
  Bim bim(0.3f, 10);
  EXPECT_FLOAT_EQ(bim.step_size(), 0.03f);
  EXPECT_EQ(bim.iterations(), 10u);
  EXPECT_FLOAT_EQ(bim.epsilon(), 0.3f);
}

TEST(Bim, ExplicitStepOverridesConvention) {
  Bim bim(0.3f, 5, 0.1f);
  EXPECT_FLOAT_EQ(bim.step_size(), 0.1f);
}

TEST(Bim, ZeroIterationsRejected) {
  EXPECT_THROW(Bim(0.3f, 0), ContractViolation);
}

TEST(Bim, StaysWithinEpsBall) {
  Bim bim(0.2f, 7);
  const Tensor x = test_batch(12);
  const Tensor adv = bim.perturb(trained_model(), x, test_labels(12));
  EXPECT_LE(ops::max_abs_diff(adv, x), 0.2f + 1e-5f);
  for (float v : adv.data()) {
    EXPECT_GE(v, kPixelMin);
    EXPECT_LE(v, kPixelMax);
  }
}

TEST(Bim, OneIterationEqualsFgsm) {
  const float eps = 0.15f;
  Bim bim(eps, 1);
  Fgsm fgsm(eps);
  const Tensor x = test_batch(8);
  const auto labels = test_labels(8);
  const Tensor a = bim.perturb(trained_model(), x, labels);
  const Tensor b = fgsm.perturb(trained_model(), x, labels);
  EXPECT_TRUE(a.equals(b));
}

TEST(Bim, TraceHasOneEntryPerIteration) {
  Bim bim(0.2f, 6);
  const Tensor x = test_batch(6);
  const auto labels = test_labels(6);
  const auto trace = bim.perturb_with_trace(trained_model(), x, labels);
  ASSERT_EQ(trace.size(), 6u);
  for (const Tensor& t : trace) EXPECT_EQ(t.shape(), x.shape());
}

TEST(Bim, TraceFinalMatchesPerturb) {
  Bim bim(0.2f, 5);
  const Tensor x = test_batch(6);
  const auto labels = test_labels(6);
  const auto trace = bim.perturb_with_trace(trained_model(), x, labels);
  const Tensor direct = bim.perturb(trained_model(), x, labels);
  EXPECT_TRUE(trace.back().equals(direct));
}

TEST(Bim, TracePerturbationGrowsMonotonically) {
  // Each iterate may move farther from the clean input, never teleport
  // beyond the ball.
  Bim bim(0.3f, 8);
  const Tensor x = test_batch(6);
  const auto trace = bim.perturb_with_trace(trained_model(), x, test_labels(6));
  float prev = 0.0f;
  for (const Tensor& t : trace) {
    const float dist = ops::max_abs_diff(t, x);
    EXPECT_GE(dist, prev - 1e-5f);
    EXPECT_LE(dist, 0.3f + 1e-5f);
    prev = dist;
  }
}

TEST(Bim, LossAlongTraceEndsHigherThanItStarts) {
  Bim bim(0.3f, 10);
  nn::Sequential& model = trained_model();
  const Tensor x = test_batch(24);
  const auto labels = test_labels(24);
  const float clean_loss =
      nn::softmax_cross_entropy_value(model.forward(x, false), labels);
  const auto trace = bim.perturb_with_trace(model, x, labels);
  const float final_loss = nn::softmax_cross_entropy_value(
      model.forward(trace.back(), false), labels);
  EXPECT_GT(final_loss, clean_loss);
}

TEST(Bim, StrongerThanFgsmAtSameBudget) {
  // The whole premise of the paper: iterative > single-step at equal eps.
  nn::Sequential& model = trained_model();
  const Tensor x = test_batch(40);
  const auto labels = test_labels(40);
  Fgsm fgsm(0.3f);
  Bim bim(0.3f, 10);
  const float fgsm_loss = nn::softmax_cross_entropy_value(
      model.forward(fgsm.perturb(model, x, labels), false), labels);
  const float bim_loss = nn::softmax_cross_entropy_value(
      model.forward(bim.perturb(model, x, labels), false), labels);
  EXPECT_GE(bim_loss, fgsm_loss * 0.9f);  // at least comparable; usually >
}

TEST(Bim, LeavesModelGradientsClean) {
  nn::Sequential& model = trained_model();
  Bim bim(0.2f, 3);
  bim.perturb(model, test_batch(4), test_labels(4));
  for (Tensor* g : model.gradients()) {
    for (float v : g->data()) EXPECT_EQ(v, 0.0f);
  }
}

}  // namespace
}  // namespace satd::attack
