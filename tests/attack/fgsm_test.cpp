#include "attack/fgsm.h"

#include <gtest/gtest.h>

#include "attack_test_util.h"
#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::attack {
namespace {

using testing::test_batch;
using testing::test_labels;
using testing::trained_model;

TEST(Fgsm, PerturbationBoundedByEps) {
  const float eps = 0.1f;
  Fgsm fgsm(eps);
  const Tensor x = test_batch(16);
  const auto labels = test_labels(16);
  const Tensor adv = fgsm.perturb(trained_model(), x, labels);
  EXPECT_EQ(adv.shape(), x.shape());
  EXPECT_LE(ops::max_abs_diff(adv, x), eps + 1e-6f);
}

TEST(Fgsm, OutputStaysInPixelRange) {
  Fgsm fgsm(0.5f);
  const Tensor x = test_batch(16);
  const Tensor adv = fgsm.perturb(trained_model(), x, test_labels(16));
  for (float v : adv.data()) {
    EXPECT_GE(v, kPixelMin);
    EXPECT_LE(v, kPixelMax);
  }
}

TEST(Fgsm, MostPixelsMoveByExactlyEpsInside) {
  // Where the gradient is nonzero and the eps-ball fits inside [0,1],
  // the step is exactly +-eps.
  const float eps = 0.05f;
  Fgsm fgsm(eps);
  const Tensor x = test_batch(8);
  const Tensor adv = fgsm.perturb(trained_model(), x, test_labels(8));
  std::size_t exact = 0, interior = 0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    if (x[i] > eps && x[i] < 1.0f - eps) {
      ++interior;
      const float d = std::abs(adv[i] - x[i]);
      if (std::abs(d - eps) < 1e-6f) ++exact;
    }
  }
  ASSERT_GT(interior, 0u);
  EXPECT_GT(static_cast<double>(exact) / interior, 0.5);
}

TEST(Fgsm, IncreasesLossOnAverage) {
  Fgsm fgsm(0.1f);
  const Tensor x = test_batch(32);
  const auto labels = test_labels(32);
  nn::Sequential& model = trained_model();
  const float clean_loss = nn::softmax_cross_entropy_value(
      model.forward(x, false), labels);
  const Tensor adv = fgsm.perturb(model, x, labels);
  const float adv_loss = nn::softmax_cross_entropy_value(
      model.forward(adv, false), labels);
  EXPECT_GT(adv_loss, clean_loss);
}

TEST(Fgsm, ZeroEpsIsAlmostIdentity) {
  Fgsm fgsm(0.0f);
  const Tensor x = test_batch(8);
  const Tensor adv = fgsm.perturb(trained_model(), x, test_labels(8));
  EXPECT_LE(ops::max_abs_diff(adv, x), 1e-6f);
}

TEST(Fgsm, NegativeEpsRejected) {
  EXPECT_THROW(Fgsm(-0.1f), ContractViolation);
}

TEST(Fgsm, LeavesModelGradientsClean) {
  nn::Sequential& model = trained_model();
  Fgsm fgsm(0.1f);
  fgsm.perturb(model, test_batch(4), test_labels(4));
  for (Tensor* g : model.gradients()) {
    for (float v : g->data()) EXPECT_EQ(v, 0.0f);
  }
}

TEST(Fgsm, StepProjectsOntoOriginBall) {
  // A step from an already-perturbed start must stay within eps of the
  // ORIGIN, not of the start — the invariant Proposed training relies on.
  nn::Sequential& model = trained_model();
  const Tensor origin = test_batch(4);
  const auto labels = test_labels(4);
  Tensor start = origin;
  for (std::size_t k = 0; k < 5; ++k) {
    start = Fgsm::step(model, start, origin, labels, 0.04f, 0.1f);
    EXPECT_LE(ops::max_abs_diff(start, origin), 0.1f + 1e-6f) << k;
  }
}

TEST(Fgsm, DeterministicForFixedModelAndInput) {
  Fgsm fgsm(0.1f);
  const Tensor x = test_batch(4);
  const auto labels = test_labels(4);
  const Tensor a = fgsm.perturb(trained_model(), x, labels);
  const Tensor b = fgsm.perturb(trained_model(), x, labels);
  EXPECT_TRUE(a.equals(b));
}

TEST(Fgsm, NameReportsEps) {
  EXPECT_NE(Fgsm(0.25f).name().find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace satd::attack
