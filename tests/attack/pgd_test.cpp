#include "attack/pgd.h"

#include <gtest/gtest.h>

#include "attack_test_util.h"
#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::attack {
namespace {

using testing::test_batch;
using testing::test_labels;
using testing::trained_model;

TEST(Pgd, StaysWithinEpsBallDespiteRandomStart) {
  Rng rng(1);
  Pgd pgd(0.15f, 5, 0.05f, rng);
  const Tensor x = test_batch(10);
  const Tensor adv = pgd.perturb(trained_model(), x, test_labels(10));
  EXPECT_LE(ops::max_abs_diff(adv, x), 0.15f + 1e-5f);
  for (float v : adv.data()) {
    EXPECT_GE(v, kPixelMin);
    EXPECT_LE(v, kPixelMax);
  }
}

TEST(Pgd, DeterministicGivenSeed) {
  const Tensor x = test_batch(6);
  const auto labels = test_labels(6);
  Rng rng1(7), rng2(7);
  Pgd a(0.1f, 4, 0.03f, rng1);
  Pgd b(0.1f, 4, 0.03f, rng2);
  EXPECT_TRUE(a.perturb(trained_model(), x, labels)
                  .equals(b.perturb(trained_model(), x, labels)));
}

TEST(Pgd, DifferentSeedsDifferentStarts) {
  const Tensor x = test_batch(6);
  const auto labels = test_labels(6);
  Rng rng1(7), rng2(8);
  Pgd a(0.1f, 1, 0.03f, rng1);
  Pgd b(0.1f, 1, 0.03f, rng2);
  EXPECT_FALSE(a.perturb(trained_model(), x, labels)
                   .equals(b.perturb(trained_model(), x, labels)));
}

TEST(Pgd, IncreasesLoss) {
  Rng rng(3);
  Pgd pgd(0.3f, 10, 0.05f, rng);
  nn::Sequential& model = trained_model();
  const Tensor x = test_batch(32);
  const auto labels = test_labels(32);
  const float clean =
      nn::softmax_cross_entropy_value(model.forward(x, false), labels);
  const Tensor adv = pgd.perturb(model, x, labels);
  const float attacked =
      nn::softmax_cross_entropy_value(model.forward(adv, false), labels);
  EXPECT_GT(attacked, clean);
}

TEST(Pgd, ValidatesArguments) {
  Rng rng(1);
  EXPECT_THROW(Pgd(-0.1f, 5, 0.01f, rng), ContractViolation);
  EXPECT_THROW(Pgd(0.1f, 0, 0.01f, rng), ContractViolation);
  EXPECT_THROW(Pgd(0.1f, 5, -0.01f, rng), ContractViolation);
}

}  // namespace
}  // namespace satd::attack
