#include "attack/mifgsm.h"

#include <gtest/gtest.h>

#include "attack_test_util.h"
#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::attack {
namespace {

using testing::test_batch;
using testing::test_labels;
using testing::trained_model;

TEST(MiFgsm, StaysWithinEpsBall) {
  MiFgsm mi(0.2f, 8, 0.05f);
  const Tensor x = test_batch(10);
  const Tensor adv = mi.perturb(trained_model(), x, test_labels(10));
  EXPECT_LE(ops::max_abs_diff(adv, x), 0.2f + 1e-5f);
  for (float v : adv.data()) {
    EXPECT_GE(v, kPixelMin);
    EXPECT_LE(v, kPixelMax);
  }
}

TEST(MiFgsm, ZeroMomentumBehavesLikeBim) {
  // With momentum 0 the velocity is the normalized gradient, whose sign
  // equals the gradient's sign — so the iterates match BIM's.
  MiFgsm mi(0.15f, 1, 0.15f, 0.0f);
  const Tensor x = test_batch(8);
  const auto labels = test_labels(8);
  const Tensor a = mi.perturb(trained_model(), x, labels);
  // Compare against a single FGSM-sized step.
  attack::MiFgsm fgsm_like(0.15f, 1, 0.15f, 0.0f);
  const Tensor b = fgsm_like.perturb(trained_model(), x, labels);
  EXPECT_TRUE(a.equals(b));
}

TEST(MiFgsm, IncreasesLoss) {
  MiFgsm mi(0.3f, 10, 0.05f);
  nn::Sequential& model = trained_model();
  const Tensor x = test_batch(32);
  const auto labels = test_labels(32);
  const float clean =
      nn::softmax_cross_entropy_value(model.forward(x, false), labels);
  const Tensor adv = mi.perturb(model, x, labels);
  const float attacked =
      nn::softmax_cross_entropy_value(model.forward(adv, false), labels);
  EXPECT_GT(attacked, clean);
}

TEST(MiFgsm, DeterministicAttack) {
  MiFgsm mi(0.2f, 5, 0.05f);
  const Tensor x = test_batch(6);
  const auto labels = test_labels(6);
  EXPECT_TRUE(mi.perturb(trained_model(), x, labels)
                  .equals(mi.perturb(trained_model(), x, labels)));
}

TEST(MiFgsm, ValidatesArguments) {
  EXPECT_THROW(MiFgsm(-0.1f, 5, 0.01f), ContractViolation);
  EXPECT_THROW(MiFgsm(0.1f, 0, 0.01f), ContractViolation);
  EXPECT_THROW(MiFgsm(0.1f, 5, -0.01f), ContractViolation);
  EXPECT_THROW(MiFgsm(0.1f, 5, 0.01f, -1.0f), ContractViolation);
}

}  // namespace
}  // namespace satd::attack
