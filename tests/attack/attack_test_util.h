// Shared fixtures for attack tests: a small dataset plus a briefly
// trained classifier (attack behaviour is only meaningful against a
// model that actually classifies better than chance).
#pragma once

#include "common/rng.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "nn/zoo.h"

namespace satd::attack::testing {

inline const data::DatasetPair& small_digits() {
  static const data::DatasetPair pair = [] {
    data::SyntheticConfig cfg;
    cfg.train_size = 200;
    cfg.test_size = 60;
    cfg.seed = 11;
    return data::make_synthetic_digits(cfg);
  }();
  return pair;
}

/// An MLP vanilla-trained for a few epochs on small_digits(); shared
/// (and mutated only transiently) by the attack tests.
inline nn::Sequential& trained_model() {
  static nn::Sequential model = [] {
    Rng rng(1);
    nn::Sequential m = nn::zoo::build("mlp_small", rng);
    core::TrainConfig cfg;
    cfg.epochs = 8;
    cfg.batch_size = 32;
    cfg.seed = 2;
    core::VanillaTrainer trainer(m, cfg);
    trainer.fit(small_digits().train);
    return m;
  }();
  return model;
}

/// First `n` test examples as one batch.
inline Tensor test_batch(std::size_t n) {
  const auto& test = small_digits().test;
  Tensor images(Shape{n, 1, 28, 28});
  for (std::size_t i = 0; i < n; ++i) {
    images.set_row(i, test.images.slice_row(i));
  }
  return images;
}

inline std::vector<std::size_t> test_labels(std::size_t n) {
  const auto& test = small_digits().test;
  return {test.labels.begin(),
          test.labels.begin() + static_cast<std::ptrdiff_t>(n)};
}

}  // namespace satd::attack::testing
