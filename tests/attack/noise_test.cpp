#include "attack/noise.h"

#include <gtest/gtest.h>

#include "attack/fgsm.h"
#include "attack_test_util.h"
#include "common/contract.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace satd::attack {
namespace {

using testing::test_batch;
using testing::test_labels;
using testing::trained_model;

TEST(RandomNoise, StaysInBallAndRange) {
  Rng rng(1);
  RandomNoise noise(0.25f, rng);
  const Tensor x = test_batch(12);
  const Tensor adv = noise.perturb(trained_model(), x, test_labels(12));
  EXPECT_LE(ops::max_abs_diff(adv, x), 0.25f + 1e-5f);
  for (float v : adv.data()) {
    EXPECT_GE(v, kPixelMin);
    EXPECT_LE(v, kPixelMax);
  }
}

TEST(RandomNoise, CornersMoveByExactlyEpsInside) {
  Rng rng(2);
  RandomNoise noise(0.1f, rng, /*corners=*/true);
  const Tensor x = test_batch(8);
  const Tensor adv = noise.perturb(trained_model(), x, test_labels(8));
  std::size_t exact = 0, interior = 0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    if (x[i] > 0.1f && x[i] < 0.9f) {
      ++interior;
      if (std::abs(std::abs(adv[i] - x[i]) - 0.1f) < 1e-6f) ++exact;
    }
  }
  ASSERT_GT(interior, 0u);
  EXPECT_EQ(exact, interior);
}

TEST(RandomNoise, MuchWeakerThanFgsmAtSameBudget) {
  // The point of the baseline: the adversarial DIRECTION matters.
  nn::Sequential& model = trained_model();
  const Tensor x = test_batch(40);
  const auto labels = test_labels(40);
  Rng rng(3);
  RandomNoise noise(0.3f, rng, /*corners=*/true);
  Fgsm fgsm(0.3f);
  const float noise_acc = nn::accuracy(
      model.forward(noise.perturb(model, x, labels), false), labels);
  const float fgsm_acc = nn::accuracy(
      model.forward(fgsm.perturb(model, x, labels), false), labels);
  EXPECT_GT(noise_acc, fgsm_acc);
}

TEST(RandomNoise, DeterministicGivenSeed) {
  const Tensor x = test_batch(6);
  const auto labels = test_labels(6);
  Rng rng1(9), rng2(9);
  RandomNoise a(0.2f, rng1), b(0.2f, rng2);
  EXPECT_TRUE(a.perturb(trained_model(), x, labels)
                  .equals(b.perturb(trained_model(), x, labels)));
}

TEST(RandomNoise, ValidatesArguments) {
  Rng rng(1);
  EXPECT_THROW(RandomNoise(-0.1f, rng), ContractViolation);
}

}  // namespace
}  // namespace satd::attack
