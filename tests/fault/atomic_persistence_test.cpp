// Atomicity end-to-end: a model/checkpoint save interrupted at any byte
// (injected via durable::fault) must leave the previous artifact fully
// loadable — the crash-mid-save scenario that used to destroy it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/durable_io.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "nn/model_io.h"
#include "nn/zoo.h"

namespace satd {
namespace {

namespace fs = std::filesystem;

class AtomicPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "satd_atomic_persistence";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    durable::fault::disarm();
  }
  void TearDown() override {
    durable::fault::disarm();
    fs::remove_all(dir_);
  }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(AtomicPersistenceTest, InterruptedModelSavePreservesPreviousModel) {
  Rng rng(1);
  nn::Sequential good = nn::zoo::build("mlp_small", rng);
  const std::string p = path("model.bin");
  nn::save_model_file(p, good, "mlp_small");
  const auto file_size = fs::file_size(p);
  Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
  const Tensor good_out = good.forward(probe, false);

  Rng rng2(2);
  nn::Sequential newer = nn::zoo::build("mlp_small", rng2);
  // Interrupt the overwrite at a spread of byte offsets, including 0
  // (nothing written) and the penultimate byte.
  const std::size_t step = std::max<std::size_t>(file_size / 64, 1);
  for (std::size_t cut = 0; cut < file_size; cut += step) {
    durable::fault::arm_write_failure(cut);
    EXPECT_THROW(nn::save_model_file(p, newer, "mlp_small"),
                 durable::IoError);
    nn::Sequential survivor = nn::load_model_file(p);
    EXPECT_TRUE(survivor.forward(probe, false).equals(good_out))
        << "interrupted save at byte " << cut
        << " damaged the previous model";
  }
  // Un-faulted save then replaces it cleanly.
  nn::save_model_file(p, newer, "mlp_small");
  EXPECT_TRUE(nn::load_model_file(p).forward(probe, false)
                  .equals(newer.forward(probe, false)));
}

TEST_F(AtomicPersistenceTest, InterruptedCheckpointSavePreservesPrevious) {
  data::SyntheticConfig dc;
  dc.train_size = 96;
  dc.test_size = 16;
  dc.seed = 3;
  const auto data = data::make_synthetic_digits(dc);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.seed = 21;

  Rng rng(1);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  auto trainer = core::make_trainer("proposed", model, cfg);
  trainer->fit(data.train);
  const std::string p = path("run.ckpt");
  trainer->save_checkpoint_file(p, 1);
  const auto file_size = fs::file_size(p);

  const std::size_t step = std::max<std::size_t>(file_size / 32, 1);
  for (std::size_t cut = 0; cut < file_size; cut += step) {
    durable::fault::arm_write_failure(cut);
    EXPECT_THROW(trainer->save_checkpoint_file(p, 2), durable::IoError);
    Rng rng2(9);
    nn::Sequential m2 = nn::zoo::build("mlp_small", rng2);
    auto t2 = core::make_trainer("proposed", m2, cfg);
    EXPECT_EQ(t2->load_checkpoint_file(p), 1u)
        << "interrupted save at byte " << cut
        << " damaged the previous checkpoint";
  }
}

}  // namespace
}  // namespace satd
