// Graceful degradation of the bench model cache: a corrupt, truncated
// or garbage entry is quarantined as `*.corrupt` and retrained — the
// bench run completes instead of aborting on one damaged file.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/durable_io.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "metrics/model_cache.h"
#include "nn/zoo.h"

namespace satd::metrics {
namespace {

namespace fs = std::filesystem;

class CacheQuarantineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "satd_cache_quarantine").string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static ModelKey key() {
    ModelKey k;
    k.method = "vanilla";
    k.dataset = "digits";
    k.model_spec = "mlp_small";
    k.train_size = 100;
    k.epochs = 2;
    k.batch_size = 32;
    k.seed = 5;
    k.eps = 0.3f;
    return k;
  }

  static core::TrainReport quick_train(nn::Sequential& model) {
    data::SyntheticConfig cfg;
    cfg.train_size = 100;
    cfg.test_size = 10;
    cfg.seed = 5;
    const auto pair = data::make_synthetic_digits(cfg);
    core::TrainConfig tc;
    tc.epochs = 2;
    core::VanillaTrainer trainer(model, tc);
    return trainer.fit(pair.train);
  }

  std::string model_path() {
    return (fs::path(dir_) / key().stem()).string() + ".model";
  }
  std::string report_path() {
    return (fs::path(dir_) / key().stem()).string() + ".report";
  }

  /// Populates the cache and returns how many times `train` ran.
  int populate() {
    int calls = 0;
    train_or_load(dir_, key(), [&](nn::Sequential& m) {
      ++calls;
      return quick_train(m);
    });
    return calls;
  }

  std::string dir_;
};

TEST_F(CacheQuarantineTest, TruncatedModelIsQuarantinedAndRetrained) {
  ASSERT_EQ(populate(), 1);
  // Truncate the cached model to half its size.
  const auto size = fs::file_size(model_path());
  fs::resize_file(model_path(), size / 2);

  int calls = 0;
  const CachedModel out = train_or_load(dir_, key(), [&](nn::Sequential& m) {
    ++calls;
    return quick_train(m);
  });
  EXPECT_EQ(calls, 1) << "damaged entry must retrain, not load";
  EXPECT_FALSE(out.from_cache);
  EXPECT_TRUE(fs::exists(model_path() + ".corrupt"))
      << "damaged model must be moved aside for inspection";
  // The retrain rewrote a good entry: next call is a clean hit.
  const CachedModel again = train_or_load(dir_, key(), [&](nn::Sequential& m) {
    ++calls;
    return quick_train(m);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(again.from_cache);
}

TEST_F(CacheQuarantineTest, BitRotInModelIsDetectedAndQuarantined) {
  ASSERT_EQ(populate(), 1);
  // Flip one byte deep inside the parameter data.
  {
    std::fstream f(model_path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(model_path()) / 2));
    char b = 0;
    f.read(&b, 1);
    f.seekp(-1, std::ios::cur);
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }
  int calls = 0;
  const CachedModel out = train_or_load(dir_, key(), [&](nn::Sequential& m) {
    ++calls;
    return quick_train(m);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(out.from_cache);
  EXPECT_TRUE(fs::exists(model_path() + ".corrupt"));
}

TEST_F(CacheQuarantineTest, GarbageReportIsQuarantinedAndRetrained) {
  ASSERT_EQ(populate(), 1);
  {
    std::ofstream os(report_path());
    os << "method";  // cut off mid-header
  }
  int calls = 0;
  const CachedModel out = train_or_load(dir_, key(), [&](nn::Sequential& m) {
    ++calls;
    return quick_train(m);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(out.from_cache);
  EXPECT_TRUE(fs::exists(report_path() + ".corrupt"));
}

TEST_F(CacheQuarantineTest, ReportRoundTripsDivergenceEvents) {
  core::TrainReport report;
  report.method = "Test";
  report.epochs.push_back({0, 1.5f, 2.25});
  report.divergence_events.push_back({0, 1, 123.0f, "loss_spike"});
  report.divergence_events.push_back({3, 0, 0.0f, "non_finite_loss"});
  fs::create_directories(dir_);
  const std::string path = dir_ + "/report.txt";
  write_report_file(path, report);
  const core::TrainReport back = read_report_file(path);
  ASSERT_EQ(back.divergence_events.size(), 2u);
  EXPECT_EQ(back.divergence_events[0].epoch, 0u);
  EXPECT_EQ(back.divergence_events[0].attempt, 1u);
  EXPECT_FLOAT_EQ(back.divergence_events[0].loss, 123.0f);
  EXPECT_EQ(back.divergence_events[0].reason, "loss_spike");
  EXPECT_EQ(back.divergence_events[1].reason, "non_finite_loss");
}

TEST_F(CacheQuarantineTest, LegacyReportWithoutDivergenceSectionLoads) {
  fs::create_directories(dir_);
  const std::string path = dir_ + "/legacy_report.txt";
  {
    std::ofstream os(path);
    os << "method Test\nepochs 1\n0 1.5 2.25\n";
  }
  const core::TrainReport back = read_report_file(path);
  ASSERT_EQ(back.epochs.size(), 1u);
  EXPECT_TRUE(back.divergence_events.empty());
}

TEST_F(CacheQuarantineTest, MissingAndMalformedReportsThrowTyped) {
  fs::create_directories(dir_);
  EXPECT_THROW(read_report_file(dir_ + "/absent.txt"), durable::IoError);
  const std::string path = dir_ + "/bad.txt";
  {
    std::ofstream os(path);
    os << "totally different file format\n";
  }
  EXPECT_THROW(read_report_file(path), durable::CorruptFileError);
}

}  // namespace
}  // namespace satd::metrics
