// Truncation sweep: a model file or checkpoint cut off at ANY byte
// prefix must either load fully (only the intact length) or throw a
// typed error — never crash, hang, or hand back garbage parameters.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/durable_io.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "nn/model_io.h"
#include "nn/zoo.h"
#include "tensor/serialize.h"

namespace satd {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& p) {
  std::ifstream is(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is), {});
}

void spit(const std::string& p, const std::string& bytes) {
  std::ofstream os(p, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Cut points covering every "interesting" region without replaying a
/// multi-KB file byte by byte: every byte of the first 64 (magic,
/// framing header, spec), ~200 evenly spaced interior cuts, and every
/// byte of the final 16 (CRC trailer).
std::vector<std::size_t> sweep_points(std::size_t size) {
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < std::min<std::size_t>(size, 64); ++i) {
    cuts.push_back(i);
  }
  const std::size_t step = std::max<std::size_t>(size / 200, 1);
  for (std::size_t i = 64; i + 16 < size; i += step) cuts.push_back(i);
  for (std::size_t i = size > 16 ? size - 16 : 0; i < size; ++i) {
    cuts.push_back(i);
  }
  return cuts;
}

class TruncationSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "satd_truncation_sweep";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(TruncationSweepTest, ModelFileNeverLoadsGarbage) {
  Rng rng(7);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  const std::string full_path = path("model.bin");
  nn::save_model_file(full_path, m, "mlp_small");
  const std::string full = slurp(full_path);
  ASSERT_GT(full.size(), 100u);

  const std::string cut_path = path("model_cut.bin");
  for (std::size_t cut : sweep_points(full.size())) {
    spit(cut_path, full.substr(0, cut));
    EXPECT_THROW(nn::load_model_file(cut_path), durable::CorruptFileError)
        << "truncation at byte " << cut << " of " << full.size();
  }
  // The intact file still loads after the sweep.
  nn::Sequential loaded = nn::load_model_file(full_path);
  Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
  EXPECT_TRUE(m.forward(probe, false).equals(loaded.forward(probe, false)));
}

TEST_F(TruncationSweepTest, CheckpointNeverLoadsGarbage) {
  data::SyntheticConfig dc;
  dc.train_size = 96;
  dc.test_size = 16;
  dc.seed = 5;
  const auto data = data::make_synthetic_digits(dc);

  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.seed = 11;
  cfg.eps = 0.1f;
  Rng rng(1);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  auto trainer = core::make_trainer("proposed", model, cfg);
  trainer->fit(data.train);
  const std::string full_path = path("run.ckpt");
  trainer->save_checkpoint_file(full_path, 2);
  const std::string full = slurp(full_path);
  ASSERT_GT(full.size(), 100u);

  Rng rng2(2);
  nn::Sequential model2 = nn::zoo::build("mlp_small", rng2);
  auto trainer2 = core::make_trainer("proposed", model2, cfg);
  const std::string cut_path = path("run_cut.ckpt");
  for (std::size_t cut : sweep_points(full.size())) {
    spit(cut_path, full.substr(0, cut));
    EXPECT_THROW(trainer2->load_checkpoint_file(cut_path),
                 durable::CorruptFileError)
        << "truncation at byte " << cut << " of " << full.size();
  }
  EXPECT_EQ(trainer2->load_checkpoint_file(full_path), 2u);
}

// Legacy (unframed) artifacts have no whole-file CRC, but every
// truncation must still surface as a typed SerializeError from the
// payload parser — the pre-checksum guarantee this layer strengthens.
TEST_F(TruncationSweepTest, LegacyUnframedModelStillFailsTyped) {
  Rng rng(9);
  nn::Sequential m = nn::zoo::build("mlp_small", rng);
  std::ostringstream ss(std::ios::binary);
  nn::save_model(ss, m, "mlp_small");
  const std::string full = ss.str();

  const std::string cut_path = path("legacy_cut.bin");
  for (std::size_t cut : sweep_points(full.size())) {
    if (cut == full.size()) continue;
    spit(cut_path, full.substr(0, cut));
    EXPECT_THROW(nn::load_model_file(cut_path), durable::CorruptFileError)
        << "truncation at byte " << cut << " of " << full.size();
  }
  // And the full legacy payload (no frame) still loads — read-compat.
  spit(cut_path, full);
  nn::Sequential loaded = nn::load_model_file(cut_path);
  Tensor probe = Tensor::full(Shape{1, 1, 28, 28}, 0.25f);
  EXPECT_TRUE(m.forward(probe, false).equals(loaded.forward(probe, false)));
}

}  // namespace
}  // namespace satd
