// Divergence guards: an epoch that blows up (injected NaN parameters,
// loss spike) is rolled back to the last-good snapshot and retried at a
// halved learning rate; the run completes, converges, and reports the
// event. Bounded retries end in a typed TrainingDivergedError.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/factory.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "nn/zoo.h"

namespace satd::core {
namespace {

const data::DatasetPair& digits() {
  static const data::DatasetPair pair = [] {
    data::SyntheticConfig cfg;
    cfg.train_size = 120;
    cfg.test_size = 30;
    cfg.seed = 77;
    return data::make_synthetic_digits(cfg);
  }();
  return pair;
}

TrainConfig config(std::size_t epochs) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.seed = 13;
  cfg.eps = 0.15f;
  return cfg;
}

/// Poisons the output-layer bias with NaN — the footprint of an exploded
/// update step. Injected at epoch start, the epoch's own loss turns NaN.
/// (A NaN in an earlier layer can be squashed by ReLU — NaN > 0 is false,
/// so it clamps to 0 — and never reach the loss; the logits can't hide.)
void poison(nn::Sequential& model) {
  Tensor* p = model.parameters().back();
  p->data()[0] = std::numeric_limits<float>::quiet_NaN();
}

std::vector<Tensor> snapshot_params(nn::Sequential& model) {
  std::vector<Tensor> out;
  for (Tensor* p : model.parameters()) out.push_back(*p);
  return out;
}

/// Runs 6 epochs with NaN injected at the start of epoch 2's first
/// attempt. Returns (report, final params).
std::pair<TrainReport, std::vector<Tensor>> injected_run(
    const std::string& method) {
  Rng rng(3);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  auto trainer = make_trainer(method, model, config(6));
  trainer->set_epoch_fault_hook(
      [](std::size_t epoch, std::size_t attempt, nn::Sequential& m) {
        if (epoch == 2 && attempt == 0) poison(m);
      });
  TrainReport report = trainer->fit(digits().train);
  return {std::move(report), snapshot_params(model)};
}

TEST(TrainerRollback, InjectedNanEpochRollsBackAndRunConverges) {
  const auto [report, params] = injected_run("proposed");
  // The event is visible in the report...
  ASSERT_EQ(report.divergence_events.size(), 1u);
  EXPECT_EQ(report.divergence_events[0].epoch, 2u);
  EXPECT_EQ(report.divergence_events[0].attempt, 0u);
  EXPECT_EQ(report.divergence_events[0].reason, "non_finite_loss");
  // ...the run still completed all epochs with a finite, improving loss...
  ASSERT_EQ(report.epochs.size(), 6u);
  EXPECT_TRUE(std::isfinite(report.final_loss()));
  EXPECT_LT(report.final_loss(), report.epochs.front().mean_loss)
      << "run failed to make progress after the rollback";
  // ...and no NaN survived into the final parameters.
  for (const Tensor& p : params) {
    for (float v : p.data()) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(TrainerRollback, RollbackRunIsDeterministic) {
  const auto [r1, p1] = injected_run("proposed");
  const auto [r2, p2] = injected_run("proposed");
  ASSERT_EQ(r1.divergence_events.size(), r2.divergence_events.size());
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_TRUE(p1[i].equals(p2[i]))
        << "parameter " << i << " differs between identical seeded runs";
  }
  for (std::size_t e = 0; e < r1.epochs.size(); ++e) {
    EXPECT_EQ(r1.epochs[e].mean_loss, r2.epochs[e].mean_loss);
  }
}

/// Exposes the protected health verdict for direct classification tests.
class VerdictProbe : public VanillaTrainer {
 public:
  using VanillaTrainer::VanillaTrainer;
  const char* verdict(float loss, float last_good) {
    return epoch_health_verdict(loss, last_good);
  }
};

TEST(TrainerRollback, HealthVerdictClassifiesEveryFailureMode) {
  Rng rng(10);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  VerdictProbe probe(model, config(2));

  EXPECT_EQ(probe.verdict(1.5f, 2.0f), nullptr);  // healthy
  EXPECT_EQ(probe.verdict(1.5f, -1.0f), nullptr); // healthy, no baseline
  EXPECT_STREQ(probe.verdict(std::numeric_limits<float>::quiet_NaN(), 2.0f),
               "non_finite_loss");
  EXPECT_STREQ(probe.verdict(std::numeric_limits<float>::infinity(), 2.0f),
               "non_finite_loss");
  // Spike: loss >> factor * last-good.
  EXPECT_STREQ(probe.verdict(1e6f, 1.0f), "loss_spike");
  // No baseline (first epoch of a run) disables the spike check.
  EXPECT_EQ(probe.verdict(1e6f, -1.0f), nullptr);
  // A poisoned parameter is flagged even when the loss looks fine.
  poison(model);
  EXPECT_STREQ(probe.verdict(1.5f, 2.0f), "non_finite_parameter");
}

TEST(TrainerRollback, PersistentDivergenceThrowsTypedErrorAfterRetries) {
  Rng rng(5);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg = config(4);
  cfg.divergence_max_retries = 2;
  auto trainer = make_trainer("vanilla", model, cfg);
  std::size_t hook_calls = 0;
  trainer->set_epoch_fault_hook(
      [&](std::size_t epoch, std::size_t, nn::Sequential& m) {
        if (epoch == 1) {
          ++hook_calls;
          poison(m);  // every attempt, including retries
        }
      });
  EXPECT_THROW(trainer->fit(digits().train), TrainingDivergedError);
  // first try + max_retries retries, each poisoned.
  EXPECT_EQ(hook_calls, cfg.divergence_max_retries + 1);
}

TEST(TrainerRollback, LossSpikeRollsBackAndRecovers) {
  Rng rng(6);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg = config(5);
  // The cross-entropy clamp (-log 1e-12 ≈ 27.6) bounds how far any loss
  // can spike; pick a factor the injected jump clears with margin while a
  // healthy retry (loss ≈ last-good) stays well below it.
  cfg.loss_spike_factor = 4.0f;
  auto trainer = make_trainer("vanilla", model, cfg);
  // Negate and blow up the weights for one attempt: the model becomes
  // confidently wrong on nearly every sample, so the epoch's mean loss
  // saturates near the clamp while staying finite — the spike detector's
  // case (a NaN would trip the non_finite checks instead).
  trainer->set_epoch_fault_hook(
      [](std::size_t epoch, std::size_t attempt, nn::Sequential& m) {
        if (epoch == 2 && attempt == 0) {
          for (Tensor* p : m.parameters()) {
            for (float& v : p->data()) v *= -1e4f;
          }
        }
      });
  const TrainReport report = trainer->fit(digits().train);
  ASSERT_EQ(report.divergence_events.size(), 1u);
  EXPECT_EQ(report.divergence_events[0].epoch, 2u);
  EXPECT_EQ(report.divergence_events[0].reason, "loss_spike");
  ASSERT_EQ(report.epochs.size(), 5u);
  EXPECT_TRUE(std::isfinite(report.final_loss()));
}

TEST(TrainerRollback, HealthChecksCanBeDisabled) {
  Rng rng(7);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  TrainConfig cfg = config(3);
  cfg.health_checks = false;
  auto trainer = make_trainer("vanilla", model, cfg);
  trainer->set_epoch_fault_hook(
      [](std::size_t epoch, std::size_t, nn::Sequential& m) {
        if (epoch == 1) poison(m);
      });
  const TrainReport report = trainer->fit(digits().train);
  EXPECT_TRUE(report.divergence_events.empty());
  EXPECT_FALSE(std::isfinite(report.final_loss()))
      << "with guards off the NaN should propagate — otherwise this test "
         "isn't exercising anything";
}

TEST(TrainerRollback, StopCheckRollsBackToEpochBoundaryDeterministically) {
  // A run stopped mid-epoch then checkpointed must equal the straight
  // run's state at that boundary: resuming it reproduces the straight
  // run bit for bit.
  const std::size_t epochs = 6;
  const std::size_t stop_after = 3;

  // Straight run for reference.
  Rng rng(8);
  nn::Sequential ref_model = nn::zoo::build("mlp_small", rng);
  auto ref = make_trainer("proposed", ref_model, config(epochs));
  ref->fit(digits().train);

  // Interrupted run: stop flag raised after `stop_after` epochs, then a
  // fresh trainer resumes from the written checkpoint.
  std::stringstream ckpt;
  {
    Rng rng2(8);
    nn::Sequential model = nn::zoo::build("mlp_small", rng2);
    auto trainer = make_trainer("proposed", model, config(epochs));
    bool stop = false;
    trainer->set_stop_check([&] { return stop; });
    const TrainReport report = trainer->fit(
        digits().train, [&](const EpochStats& stats) {
          if (stats.epoch + 1 == stop_after) stop = true;
        });
    EXPECT_TRUE(report.stopped_early);
    EXPECT_EQ(report.epochs.size(), stop_after);
    trainer->save_checkpoint(ckpt, stop_after);
  }
  Rng rng3(99);
  nn::Sequential model = nn::zoo::build("mlp_small", rng3);
  auto resumed = make_trainer("proposed", model, config(epochs));
  EXPECT_EQ(resumed->load_checkpoint(ckpt), stop_after);
  resumed->fit(digits().train, {}, stop_after);

  const auto a = ref_model.parameters();
  const auto b = model.parameters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i]->equals(*b[i]))
        << "graceful-stop resume diverged from the straight run";
  }
}

}  // namespace
}  // namespace satd::core
