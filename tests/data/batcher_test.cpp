#include "data/batcher.h"

#include <gtest/gtest.h>

#include <set>

#include "common/contract.h"

namespace satd::data {
namespace {

Dataset make_dataset(std::size_t n) {
  Dataset d;
  d.name = "test";
  d.num_classes = 10;
  d.images = Tensor(Shape{n, 1, 2, 2});
  d.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.labels[i] = i % 10;
    // Tag each image with its index so batches are traceable.
    d.images.at(i, 0, 0, 0) = static_cast<float>(i) / static_cast<float>(n);
  }
  return d;
}

TEST(Batcher, BatchCountRoundsUp) {
  Dataset d = make_dataset(10);
  EXPECT_EQ(Batcher(d, 3).batch_count(), 4u);
  EXPECT_EQ(Batcher(d, 5).batch_count(), 2u);
  EXPECT_EQ(Batcher(d, 10).batch_count(), 1u);
  EXPECT_EQ(Batcher(d, 64).batch_count(), 1u);
}

TEST(Batcher, InvalidConstructionThrows) {
  Dataset d = make_dataset(4);
  EXPECT_THROW(Batcher(d, 0), ContractViolation);
  Dataset empty;
  empty.images = Tensor(Shape{0, 1, 2, 2});
  empty.num_classes = 10;
  EXPECT_THROW(Batcher(empty, 4), ContractViolation);
}

TEST(Batcher, EpochCoversEveryExampleOnce) {
  Dataset d = make_dataset(23);
  Batcher b(d, 5);
  Rng rng(1);
  b.begin_epoch(rng);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t i = 0; i < b.batch_count(); ++i) {
    const Batch batch = b.make_batch(i);
    total += batch.size();
    for (std::size_t idx : batch.indices) seen.insert(idx);
  }
  EXPECT_EQ(total, 23u);
  EXPECT_EQ(seen.size(), 23u);
}

TEST(Batcher, LastBatchIsSmaller) {
  Dataset d = make_dataset(7);
  Batcher b(d, 3);
  Rng rng(1);
  b.begin_epoch(rng);
  EXPECT_EQ(b.make_batch(0).size(), 3u);
  EXPECT_EQ(b.make_batch(1).size(), 3u);
  EXPECT_EQ(b.make_batch(2).size(), 1u);
  EXPECT_THROW(b.make_batch(3), ContractViolation);
}

TEST(Batcher, BatchContentsMatchIndices) {
  Dataset d = make_dataset(12);
  Batcher b(d, 4);
  Rng rng(2);
  b.begin_epoch(rng);
  for (std::size_t i = 0; i < b.batch_count(); ++i) {
    const Batch batch = b.make_batch(i);
    for (std::size_t k = 0; k < batch.size(); ++k) {
      const std::size_t src = batch.indices[k];
      EXPECT_EQ(batch.labels[k], d.labels[src]);
      EXPECT_TRUE(
          batch.images.slice_row(k).equals(d.images.slice_row(src)));
    }
  }
}

TEST(Batcher, ShuffleChangesOrderBetweenEpochs) {
  Dataset d = make_dataset(50);
  Batcher b(d, 50);
  Rng rng(3);
  b.begin_epoch(rng);
  const Batch first = b.make_batch(0);
  b.begin_epoch(rng);
  const Batch second = b.make_batch(0);
  EXPECT_NE(first.indices, second.indices);
}

TEST(Batcher, DeterministicGivenSameRngState) {
  Dataset d = make_dataset(20);
  Batcher b1(d, 6), b2(d, 6);
  Rng rng1(4), rng2(4);
  b1.begin_epoch(rng1);
  b2.begin_epoch(rng2);
  for (std::size_t i = 0; i < b1.batch_count(); ++i) {
    EXPECT_EQ(b1.make_batch(i).indices, b2.make_batch(i).indices);
  }
}

}  // namespace
}  // namespace satd::data
