#include "data/glyph.h"

#include <gtest/gtest.h>

#include "common/contract.h"
#include "tensor/ops.h"

namespace satd::data {
namespace {

const Jitter kNoJitter{};

TEST(Canvas, StartsBlank) {
  Canvas c(28);
  EXPECT_EQ(c.side(), 28u);
  for (std::size_t y = 0; y < 28; ++y) {
    for (std::size_t x = 0; x < 28; ++x) EXPECT_EQ(c.pixel(y, x), 0.0f);
  }
}

TEST(Canvas, TooSmallThrows) {
  EXPECT_THROW(Canvas(2), ContractViolation);
}

TEST(Canvas, StampPaintsCenter) {
  Canvas c(28);
  c.stamp(0.5, 0.5, 1.5, 1.0, kNoJitter);
  // Unit-box (0.5, 0.5) maps near pixel (13.5, 13.5).
  EXPECT_GT(c.pixel(13, 13), 0.5f);
  EXPECT_EQ(c.pixel(0, 0), 0.0f);
}

TEST(Canvas, StampOutsideBoxIsSafelyClipped) {
  Canvas c(28);
  c.stamp(2.0, -1.0, 2.0, 1.0, kNoJitter);  // far outside
  Tensor t = c.to_tensor();
  EXPECT_FLOAT_EQ(ops::sum(t), 0.0f);
}

TEST(Canvas, SegmentConnectsEndpoints) {
  Canvas c(28);
  c.segment(0.1, 0.5, 0.9, 0.5, 1.0, 1.0, kNoJitter);
  // Horizontal line across the middle: left, center, right all inked.
  EXPECT_GT(c.pixel(13, 4), 0.3f);
  EXPECT_GT(c.pixel(13, 13), 0.3f);
  EXPECT_GT(c.pixel(13, 23), 0.3f);
  // Far above the line: blank.
  EXPECT_EQ(c.pixel(3, 13), 0.0f);
}

TEST(Canvas, ArcDrawsFullCircleOutline) {
  Canvas c(28);
  c.arc(0.5, 0.5, 0.3, 0.3, 0.0, 6.2832, 1.0, 1.0, kNoJitter);
  // Ring pixels inked, center mostly empty.
  EXPECT_GT(c.pixel(13, 5), 0.2f);   // left of ring
  EXPECT_GT(c.pixel(13, 21), 0.2f);  // right of ring
  EXPECT_LT(c.pixel(13, 13), 0.2f);  // hollow middle
}

TEST(Canvas, FillRectCoversInterior) {
  Canvas c(28);
  c.fill_rect(0.25, 0.25, 0.75, 0.75, 0.8, kNoJitter);
  EXPECT_NEAR(c.pixel(14, 14), 0.8f, 1e-5f);
  EXPECT_EQ(c.pixel(2, 2), 0.0f);
}

TEST(Canvas, FillTriangleCoversCentroid) {
  Canvas c(28);
  c.fill_triangle(0.2, 0.8, 0.8, 0.8, 0.5, 0.2, 1.0, kNoJitter);
  EXPECT_GT(c.pixel(17, 13), 0.5f);  // centroid area
  EXPECT_EQ(c.pixel(5, 3), 0.0f);    // outside
}

TEST(Canvas, FillEllipseCoversCenter) {
  Canvas c(28);
  c.fill_ellipse(0.5, 0.5, 0.3, 0.2, 1.0, kNoJitter);
  EXPECT_GT(c.pixel(13, 13), 0.5f);
  EXPECT_EQ(c.pixel(2, 13), 0.0f);  // above the ellipse
}

TEST(Canvas, BlurSpreadsAndPreservesRoughMass) {
  Canvas c(28);
  c.fill_rect(0.4, 0.4, 0.6, 0.6, 1.0, kNoJitter);
  const float before_center = c.pixel(14, 14);
  Tensor before = c.to_tensor();
  c.blur(1);
  Tensor after = c.to_tensor();
  EXPECT_LE(c.pixel(14, 14), before_center + 1e-6f);
  // Mass roughly conserved away from borders.
  EXPECT_NEAR(ops::sum(after), ops::sum(before), ops::sum(before) * 0.2f);
}

TEST(Canvas, NoiseStaysInRange) {
  Canvas c(28);
  Rng rng(1);
  c.fill_rect(0.0, 0.0, 1.0, 1.0, 0.5, kNoJitter);
  c.add_noise(rng, 0.5);
  for (std::size_t y = 0; y < 28; ++y) {
    for (std::size_t x = 0; x < 28; ++x) {
      EXPECT_GE(c.pixel(y, x), 0.0f);
      EXPECT_LE(c.pixel(y, x), 1.0f);
    }
  }
}

TEST(Canvas, TextureOnlyAffectsInkedPixels) {
  Canvas c(28);
  Rng rng(2);
  c.fill_rect(0.3, 0.3, 0.7, 0.7, 0.8, kNoJitter);
  c.texture(rng, 0.3);
  EXPECT_EQ(c.pixel(1, 1), 0.0f);  // background untouched
}

TEST(Canvas, ToTensorShapeAndRange) {
  Canvas c(28);
  c.fill_rect(0.0, 0.0, 1.0, 1.0, 2.0, kNoJitter);  // over-saturated paint
  Tensor t = c.to_tensor();
  EXPECT_EQ(t.shape(), (Shape{1, 28, 28}));
  for (float v : t.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Jitter, IdentityLeavesPointsFixed) {
  double x = 0.3, y = 0.7;
  kNoJitter.apply(x, y);
  EXPECT_NEAR(x, 0.3, 1e-12);
  EXPECT_NEAR(y, 0.7, 1e-12);
}

TEST(Jitter, ShiftTranslates) {
  Jitter j;
  j.shift_x = 0.1;
  j.shift_y = -0.2;
  double x = 0.5, y = 0.5;
  j.apply(x, y);
  EXPECT_NEAR(x, 0.6, 1e-12);
  EXPECT_NEAR(y, 0.3, 1e-12);
}

TEST(Jitter, RotationPreservesCenter) {
  Jitter j;
  j.angle = 1.0;
  double x = 0.5, y = 0.5;
  j.apply(x, y);
  EXPECT_NEAR(x, 0.5, 1e-12);
  EXPECT_NEAR(y, 0.5, 1e-12);
}

TEST(Jitter, RandomStaysWithinMagnitudes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Jitter j = Jitter::random(rng, 0.1, 0.2, 0.05);
    EXPECT_LE(std::abs(j.angle), 0.1);
    EXPECT_LE(std::abs(j.scale_x - 1.0), 0.2);
    EXPECT_LE(std::abs(j.scale_y - 1.0), 0.2);
    EXPECT_LE(std::abs(j.shift_x), 0.05);
    EXPECT_LE(std::abs(j.shift_y), 0.05);
  }
}

}  // namespace
}  // namespace satd::data
