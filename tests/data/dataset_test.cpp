#include "data/dataset.h"

#include <gtest/gtest.h>

#include "common/contract.h"

namespace satd::data {
namespace {

Dataset make_tiny() {
  Dataset d;
  d.name = "tiny";
  d.num_classes = 3;
  d.images = Tensor(Shape{4, 1, 2, 2});
  for (std::size_t i = 0; i < d.images.numel(); ++i) {
    d.images[i] = static_cast<float>(i) / 16.0f;
  }
  d.labels = {0, 1, 2, 1};
  return d;
}

TEST(Dataset, ValidatePassesOnWellFormed) {
  Dataset d = make_tiny();
  EXPECT_NO_THROW(d.validate());
}

TEST(Dataset, ValidateCatchesLabelOutOfRange) {
  Dataset d = make_tiny();
  d.labels[2] = 3;
  EXPECT_THROW(d.validate(), ContractViolation);
}

TEST(Dataset, ValidateCatchesCountMismatch) {
  Dataset d = make_tiny();
  d.labels.push_back(0);
  EXPECT_THROW(d.validate(), ContractViolation);
}

TEST(Dataset, ValidateCatchesPixelRange) {
  Dataset d = make_tiny();
  d.images[0] = 1.5f;
  EXPECT_THROW(d.validate(), ContractViolation);
  d.images[0] = -0.1f;
  EXPECT_THROW(d.validate(), ContractViolation);
}

TEST(Dataset, SliceCopiesRange) {
  Dataset d = make_tiny();
  Dataset s = d.slice(1, 3);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.labels[0], 1u);
  EXPECT_EQ(s.labels[1], 2u);
  EXPECT_TRUE(s.images.slice_row(0).equals(d.images.slice_row(1)));
  EXPECT_THROW(d.slice(3, 2), ContractViolation);
  EXPECT_THROW(d.slice(0, 5), ContractViolation);
}

TEST(Dataset, GatherReordersAndRepeats) {
  Dataset d = make_tiny();
  Dataset g = d.gather({3, 3, 0});
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.labels[0], 1u);
  EXPECT_EQ(g.labels[1], 1u);
  EXPECT_EQ(g.labels[2], 0u);
  EXPECT_TRUE(g.images.slice_row(0).equals(d.images.slice_row(3)));
  EXPECT_THROW(d.gather({4}), ContractViolation);
}

TEST(Dataset, ClassHistogram) {
  Dataset d = make_tiny();
  const auto hist = d.class_histogram();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
}

}  // namespace
}  // namespace satd::data
