#include "data/pgm.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/contract.h"
#include "common/rng.h"
#include "data/synthetic.h"

namespace satd::data {
namespace {

namespace fs = std::filesystem;

class PgmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "satd_pgm_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  fs::path dir_;
};

TEST_F(PgmTest, RoundTripsWithinQuantization) {
  Rng rng(1);
  const Tensor img = render_digit(5, rng);
  write_pgm(path("digit.pgm"), img);
  const Tensor back = read_pgm(path("digit.pgm"));
  EXPECT_EQ(back.shape(), img.shape());
  // 8-bit quantization: worst case half a level.
  EXPECT_TRUE(back.allclose(img, 0.5f / 255.0f + 1e-6f));
}

TEST_F(PgmTest, AcceptsRank2Images) {
  Tensor img(Shape{4, 6});
  img.fill(0.5f);
  write_pgm(path("r2.pgm"), img);
  const Tensor back = read_pgm(path("r2.pgm"));
  EXPECT_EQ(back.shape(), (Shape{1, 4, 6}));
}

TEST_F(PgmTest, HeaderIsWellFormed) {
  Tensor img(Shape{1, 2, 3});
  write_pgm(path("h.pgm"), img);
  std::ifstream is(path("h.pgm"), std::ios::binary);
  std::string magic;
  std::size_t w, h, maxval;
  is >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 3u);
  EXPECT_EQ(h, 2u);
  EXPECT_EQ(maxval, 255u);
}

TEST_F(PgmTest, RejectsBadInputs) {
  Tensor batch(Shape{2, 1, 4, 4});
  EXPECT_THROW(write_pgm(path("bad.pgm"), batch), ContractViolation);
  EXPECT_THROW(read_pgm(path("missing.pgm")), std::runtime_error);
  {
    std::ofstream os(path("garbage.pgm"), std::ios::binary);
    os << "P6 2 2 255 junk";
  }
  EXPECT_THROW(read_pgm(path("garbage.pgm")), std::runtime_error);
  {
    std::ofstream os(path("trunc.pgm"), std::ios::binary);
    os << "P5\n10 10\n255\nxx";  // far fewer than 100 bytes
  }
  EXPECT_THROW(read_pgm(path("trunc.pgm")), std::runtime_error);
}

TEST(Montage, TilesRowMajor) {
  Tensor images(Shape{3, 1, 2, 2});
  images.slice_row(0);  // no-op sanity
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      images[i * 4 + j] = static_cast<float>(i) / 10.0f;
    }
  }
  const Tensor m = montage(images, 2);
  EXPECT_EQ(m.shape(), (Shape{1, 4, 4}));
  // Image 0 occupies top-left 2x2, image 1 top-right, image 2 bottom-left.
  EXPECT_FLOAT_EQ(m.at(std::size_t{0}, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m.at(std::size_t{0}, 0, 2), 0.1f);
  EXPECT_FLOAT_EQ(m.at(std::size_t{0}, 2, 0), 0.2f);
  // Missing fourth cell is black.
  EXPECT_FLOAT_EQ(m.at(std::size_t{0}, 2, 2), 0.0f);
}

TEST(Montage, SingleColumnStacksVertically) {
  Tensor images(Shape{2, 1, 3, 3});
  const Tensor m = montage(images, 1);
  EXPECT_EQ(m.shape(), (Shape{1, 6, 3}));
}

TEST(Montage, ValidatesInputs) {
  Tensor images(Shape{2, 1, 3, 3});
  EXPECT_THROW(montage(images, 0), ContractViolation);
  Tensor multi(Shape{2, 3, 3, 3});
  EXPECT_THROW(montage(multi, 2), ContractViolation);
  Tensor empty(Shape{0, 1, 3, 3});
  EXPECT_THROW(montage(empty, 2), ContractViolation);
}

}  // namespace
}  // namespace satd::data
