#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "common/contract.h"
#include "tensor/ops.h"

namespace satd::data {
namespace {

SyntheticConfig tiny_config() {
  SyntheticConfig cfg;
  cfg.train_size = 60;
  cfg.test_size = 30;
  cfg.seed = 7;
  return cfg;
}

class SyntheticDatasetTest : public ::testing::TestWithParam<std::string> {
 protected:
  DatasetPair make() { return make_dataset(GetParam(), tiny_config()); }
};

TEST_P(SyntheticDatasetTest, ShapesAndSizes) {
  const DatasetPair pair = make();
  EXPECT_EQ(pair.train.size(), 60u);
  EXPECT_EQ(pair.test.size(), 30u);
  EXPECT_EQ(pair.train.images.shape(), (Shape{60, 1, 28, 28}));
  EXPECT_EQ(pair.train.num_classes, 10u);
}

TEST_P(SyntheticDatasetTest, PassesValidation) {
  const DatasetPair pair = make();
  EXPECT_NO_THROW(pair.train.validate());
  EXPECT_NO_THROW(pair.test.validate());
}

TEST_P(SyntheticDatasetTest, ClassesAreBalanced) {
  const DatasetPair pair = make();
  for (std::size_t count : pair.train.class_histogram()) {
    EXPECT_EQ(count, 6u);
  }
  for (std::size_t count : pair.test.class_histogram()) {
    EXPECT_EQ(count, 3u);
  }
}

TEST_P(SyntheticDatasetTest, DeterministicGivenSeed) {
  const DatasetPair a = make();
  const DatasetPair b = make();
  EXPECT_TRUE(a.train.images.equals(b.train.images));
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST_P(SyntheticDatasetTest, DifferentSeedsProduceDifferentData) {
  SyntheticConfig cfg = tiny_config();
  const DatasetPair a = make_dataset(GetParam(), cfg);
  cfg.seed = 8;
  const DatasetPair b = make_dataset(GetParam(), cfg);
  EXPECT_FALSE(a.train.images.equals(b.train.images));
}

TEST_P(SyntheticDatasetTest, TrainAndTestAreDistinct) {
  const DatasetPair pair = make();
  // The splits come from different RNG streams; identical images would
  // indicate stream aliasing.
  bool any_diff = false;
  const std::size_t n = std::min(pair.train.size(), pair.test.size());
  for (std::size_t i = 0; i < n && !any_diff; ++i) {
    if (!pair.train.images.slice_row(i).equals(pair.test.images.slice_row(i))) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_P(SyntheticDatasetTest, ImagesHaveInk) {
  const DatasetPair pair = make();
  for (std::size_t i = 0; i < pair.train.size(); ++i) {
    const Tensor img = pair.train.images.slice_row(i);
    EXPECT_GT(ops::sum(img), 1.0f) << "image " << i << " is blank";
  }
}

TEST_P(SyntheticDatasetTest, IntraClassVariation) {
  // Two same-class examples must differ (jitter/noise applied).
  const DatasetPair pair = make();
  std::vector<std::size_t> first_of_class(10, SIZE_MAX);
  for (std::size_t i = 0; i < pair.train.size(); ++i) {
    const std::size_t y = pair.train.labels[i];
    if (first_of_class[y] == SIZE_MAX) {
      first_of_class[y] = i;
    } else {
      EXPECT_FALSE(pair.train.images.slice_row(i).equals(
          pair.train.images.slice_row(first_of_class[y])))
          << "class " << y;
      first_of_class[y] = i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, SyntheticDatasetTest,
                         ::testing::Values("digits", "fashion"));

TEST(Synthetic, UnknownDatasetNameThrows) {
  EXPECT_THROW(make_dataset("imagenet", tiny_config()), ContractViolation);
}

TEST(Synthetic, ZeroSizeRejected) {
  SyntheticConfig cfg = tiny_config();
  cfg.train_size = 0;
  EXPECT_THROW(make_synthetic_digits(cfg), ContractViolation);
  EXPECT_THROW(make_synthetic_fashion(cfg), ContractViolation);
}

TEST(Synthetic, RenderSingleExampleShape) {
  Rng rng(1);
  EXPECT_EQ(render_digit(3, rng).shape(), (Shape{1, 28, 28}));
  EXPECT_EQ(render_fashion(8, rng).shape(), (Shape{1, 28, 28}));
  EXPECT_THROW(render_digit(10, rng), ContractViolation);
  EXPECT_THROW(render_fashion(10, rng), ContractViolation);
}

TEST(Synthetic, ClassesAreVisuallyDistinctOnAverage) {
  // Mean images of different digit classes should differ substantially;
  // a weak but meaningful separability proxy that catches "all classes
  // render the same glyph" regressions.
  Rng rng(5);
  std::vector<Tensor> means;
  for (std::size_t cls = 0; cls < 10; ++cls) {
    Tensor acc(Shape{1, 28, 28});
    for (int rep = 0; rep < 8; ++rep) {
      ops::axpy(1.0f / 8.0f, render_digit(cls, rng), acc);
    }
    means.push_back(std::move(acc));
  }
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      const float dist = ops::l2_norm(ops::sub(means[a], means[b]));
      EXPECT_GT(dist, 1.0f) << "digit classes " << a << " and " << b
                            << " look identical";
    }
  }
}

TEST(Synthetic, FashionClassNamesCoverAllClasses) {
  for (std::size_t cls = 0; cls < 10; ++cls) {
    EXPECT_NE(std::string(fashion_class_name(cls)), "");
  }
  EXPECT_THROW(fashion_class_name(10), ContractViolation);
}

}  // namespace
}  // namespace satd::data
