#include "data/corruptions.h"

#include <gtest/gtest.h>

#include "common/contract.h"
#include "data/synthetic.h"
#include "tensor/ops.h"

namespace satd::data {
namespace {

Tensor sample_image() {
  Rng rng(17);
  return render_digit(4, rng);
}

class CorruptionKindTest : public ::testing::TestWithParam<Corruption> {};

TEST_P(CorruptionKindTest, OutputStaysInRangeAndShape) {
  Rng rng(1);
  const Tensor img = sample_image();
  for (float severity : {0.0f, 0.3f, 0.7f, 1.0f}) {
    const Tensor out = corrupt_image(img, GetParam(), severity, rng);
    EXPECT_EQ(out.shape(), img.shape());
    for (float v : out.data()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST_P(CorruptionKindTest, SeverityOneActuallyChangesTheImage) {
  Rng rng(2);
  const Tensor img = sample_image();
  const Tensor out = corrupt_image(img, GetParam(), 1.0f, rng);
  EXPECT_GT(ops::max_abs_diff(out, img), 0.01f)
      << corruption_name(GetParam());
}

TEST_P(CorruptionKindTest, HasAName) {
  EXPECT_GT(std::string(corruption_name(GetParam())).size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, CorruptionKindTest,
    ::testing::ValuesIn(all_corruptions()),
    [](const ::testing::TestParamInfo<Corruption>& info) {
      std::string n = corruption_name(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Corruptions, ZeroSeverityBlurAndOcclusionAreIdentity) {
  Rng rng(3);
  const Tensor img = sample_image();
  EXPECT_TRUE(corrupt_image(img, Corruption::kBlur, 0.0f, rng).equals(img));
  EXPECT_TRUE(
      corrupt_image(img, Corruption::kOcclusion, 0.0f, rng).equals(img));
  EXPECT_TRUE(
      corrupt_image(img, Corruption::kContrast, 0.0f, rng).allclose(img, 1e-6f));
}

TEST(Corruptions, ContrastMovesPixelsTowardsMean) {
  Rng rng(4);
  const Tensor img = sample_image();
  const float mean = ops::mean(img);
  const Tensor out = corrupt_image(img, Corruption::kContrast, 1.0f, rng);
  for (std::size_t i = 0; i < img.numel(); ++i) {
    EXPECT_LE(std::abs(out[i] - mean), std::abs(img[i] - mean) + 1e-6f);
  }
}

TEST(Corruptions, OcclusionZeroesASquare) {
  Rng rng(5);
  Tensor img = Tensor::full(Shape{1, 28, 28}, 1.0f);
  const Tensor out = corrupt_image(img, Corruption::kOcclusion, 1.0f, rng);
  std::size_t zeros = 0;
  for (float v : out.data()) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_EQ(zeros, 14u * 14u);  // severity 1 -> half the min side squared
}

TEST(Corruptions, DatasetCorruptionPreservesLabelsAndValidates) {
  SyntheticConfig cfg;
  cfg.train_size = 30;
  cfg.test_size = 20;
  cfg.seed = 6;
  const auto pair = make_synthetic_digits(cfg);
  const Dataset corrupted =
      corrupt_dataset(pair.test, Corruption::kGaussianNoise, 0.5f, 9);
  EXPECT_EQ(corrupted.labels, pair.test.labels);
  EXPECT_NE(corrupted.name.find("gaussian-noise"), std::string::npos);
  EXPECT_NO_THROW(corrupted.validate());
  EXPECT_FALSE(corrupted.images.equals(pair.test.images));
}

TEST(Corruptions, DatasetCorruptionIsDeterministic) {
  SyntheticConfig cfg;
  cfg.train_size = 30;
  cfg.test_size = 10;
  cfg.seed = 6;
  const auto pair = make_synthetic_digits(cfg);
  const Dataset a = corrupt_dataset(pair.test, Corruption::kPixelDropout,
                                    0.5f, 11);
  const Dataset b = corrupt_dataset(pair.test, Corruption::kPixelDropout,
                                    0.5f, 11);
  EXPECT_TRUE(a.images.equals(b.images));
}

TEST(Corruptions, InvalidSeverityRejected) {
  Rng rng(1);
  const Tensor img = sample_image();
  EXPECT_THROW(corrupt_image(img, Corruption::kBlur, -0.1f, rng),
               ContractViolation);
  EXPECT_THROW(corrupt_image(img, Corruption::kBlur, 1.1f, rng),
               ContractViolation);
}

}  // namespace
}  // namespace satd::data
