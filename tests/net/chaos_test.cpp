// Socket chaos drills: every armed wire-level fault must surface as a
// typed client error or a clean retry — never a crash, never a hang.
// Covers torn responses (server dies mid-write), CRC corruption in
// flight, silently dropped responses (client deadline), mid-conversation
// disconnects, and failover when a whole front end goes away abruptly
// (the in-process stand-in for the CI kill-9 drill).
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>

#include "net/client.h"
#include "net/fault.h"
#include "net/frontend.h"

namespace satd::net {
namespace {

Tensor tiny_image() { return Tensor::full(Shape{2, 2}, 0.5f); }

env::ListenAddress unix_addr(const std::string& name) {
  env::ListenAddress a;
  a.kind = env::ListenAddress::Kind::kUnix;
  a.path = testing::TempDir() + name;
  return a;
}

FrontEndSink instant_sink() {
  FrontEndSink sink;
  sink.submit = [](const Tensor& image, double, std::uint64_t,
                   std::uint32_t*, std::uint64_t*) {
    std::promise<serve::Response> p;
    serve::Response r;
    r.predicted = image.numel();
    p.set_value(std::move(r));
    return serve::Ticket(p.get_future());
  };
  return sink;
}

class SocketChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm();
    cfg_.listen = unix_addr("chaos_fe.sock");
    fe_ = std::make_unique<FrontEnd>(cfg_, instant_sink());
    fe_->start();
    ccfg_.endpoints = {cfg_.listen};
    ccfg_.max_attempts = 3;
    ccfg_.request_timeout = 0.5;  // drop-fault tests rely on this firing
  }
  void TearDown() override {
    fe_->stop();
    fault::disarm();
  }

  FrontEndConfig cfg_;
  ClientConfig ccfg_;
  std::unique_ptr<FrontEnd> fe_;
};

TEST_F(SocketChaos, TornResponseRetriesCleanly) {
  // The server "crashes" after 5 bytes of the response: the client sees
  // EOF inside a frame -> retryable connection loss -> attempt 2 wins.
  fault::arm_torn_response(5);
  Client client(ccfg_);
  const ClientResult r = client.request(tiny_image());
  ASSERT_TRUE(r.ok()) << to_string(r.error) << ": " << r.detail;
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(fe_->stats().faults_injected, 1u);
}

TEST_F(SocketChaos, CorruptResponseRetriesCleanly) {
  // One payload byte flipped in flight: the CRC trailer convicts the
  // frame, the stream is poisoned, and the retry succeeds.
  fault::arm_corrupt_response();
  Client client(ccfg_);
  const ClientResult r = client.request(tiny_image());
  ASSERT_TRUE(r.ok()) << to_string(r.error) << ": " << r.detail;
  EXPECT_EQ(r.attempts, 2u);
}

TEST_F(SocketChaos, DroppedResponseTimesOutThenRetries) {
  // The server swallows the response but keeps the connection: only the
  // client's own read deadline can save it.
  fault::arm_drop_response();
  Client client(ccfg_);
  const ClientResult r = client.request(tiny_image());
  ASSERT_TRUE(r.ok()) << to_string(r.error) << ": " << r.detail;
  EXPECT_EQ(r.attempts, 2u);
}

TEST_F(SocketChaos, DisconnectInsteadOfResponseRetriesCleanly) {
  fault::arm_disconnect_response();
  Client client(ccfg_);
  const ClientResult r = client.request(tiny_image());
  ASSERT_TRUE(r.ok()) << to_string(r.error) << ": " << r.detail;
  EXPECT_EQ(r.attempts, 2u);
}

TEST_F(SocketChaos, ExhaustedRetriesYieldTypedTimeoutNotAHang) {
  fault::arm_drop_response();
  ClientConfig cfg = ccfg_;
  cfg.max_attempts = 1;  // no second chance
  Client client(cfg);
  const ClientResult r = client.request(tiny_image());
  EXPECT_EQ(r.error, ClientError::kTimeout);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_FALSE(r.detail.empty());
}

TEST_F(SocketChaos, EveryFaultInSequenceUnderOneClient) {
  // The full gauntlet on one client instance: each armed fault resolves
  // (typed or retried) and the next request starts clean.
  Client client(ccfg_);
  const fault::ResponseFault gauntlet[] = {
      fault::ResponseFault::kTorn, fault::ResponseFault::kCorrupt,
      fault::ResponseFault::kDrop, fault::ResponseFault::kDisconnect};
  for (const auto f : gauntlet) {
    switch (f) {
      case fault::ResponseFault::kTorn: fault::arm_torn_response(3); break;
      case fault::ResponseFault::kCorrupt: fault::arm_corrupt_response(); break;
      case fault::ResponseFault::kDrop: fault::arm_drop_response(); break;
      case fault::ResponseFault::kDisconnect:
        fault::arm_disconnect_response();
        break;
      default: break;
    }
    const ClientResult r = client.request(tiny_image());
    ASSERT_TRUE(r.ok()) << to_string(r.error) << ": " << r.detail;
    EXPECT_EQ(r.attempts, 2u) << "fault " << static_cast<int>(f);
  }
  EXPECT_FALSE(fault::armed());
}

TEST_F(SocketChaos, FrontEndVanishingMidStreamFailsOverToTheSurvivor) {
  // Two front ends; the one the client talks to first is destroyed
  // abruptly (connections die, listener gone — the in-process stand-in
  // for kill -9). The client must fail over and finish on the survivor.
  FrontEndConfig cfg2;
  cfg2.listen = unix_addr("chaos_fe2.sock");
  FrontEnd survivor(cfg2, instant_sink());
  survivor.start();

  ClientConfig cfg = ccfg_;
  cfg.endpoints = {cfg_.listen, cfg2.listen};
  cfg.max_attempts = 4;
  Client client(cfg);
  ASSERT_TRUE(client.request(tiny_image()).ok());
  EXPECT_EQ(client.endpoint_cursor(), 0u);

  fe_->stop();  // shard 0 is gone: cached connection now yields EOF

  const ClientResult r = client.request(tiny_image());
  ASSERT_TRUE(r.ok()) << to_string(r.error) << ": " << r.detail;
  EXPECT_GE(r.attempts, 2u);
  EXPECT_EQ(client.endpoint_cursor(), 1u);
  survivor.stop();
}

}  // namespace
}  // namespace satd::net
