// SATDWIRE1 wire-protocol tests: encode/decode roundtrips, the
// incremental decoder's stream semantics, and the fuzz sweeps behind the
// "malformed input never crashes" contract — truncation at every byte
// boundary, a bit-flip at every byte position, hostile length/rank/dim
// fields, and random payload garbage.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace satd::net {
namespace {

Tensor small_image() {
  std::vector<float> px(2 * 3);
  for (std::size_t i = 0; i < px.size(); ++i) {
    px[i] = 0.125f * static_cast<float>(i);
  }
  return Tensor(Shape{2, 3}, px);
}

RequestFrame sample_request() {
  RequestFrame f;
  f.request_id = 42;
  f.timeout = 0.25;
  f.route_key = 0xfeedbeef;
  f.image = small_image();
  return f;
}

/// Runs a full frame through a fresh decoder, expecting exactly one
/// frame out.
bool decode_one(const std::string& bytes, FrameType& type,
                std::string& payload) {
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  return dec.next(type, payload);
}

TEST(Wire, RequestRoundtrip) {
  const std::string bytes = encode_request(sample_request());
  FrameType type;
  std::string payload;
  ASSERT_TRUE(decode_one(bytes, type, payload));
  EXPECT_EQ(type, FrameType::kRequest);

  RequestFrame out;
  std::string err;
  ASSERT_TRUE(decode_request(payload, out, err)) << err;
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_DOUBLE_EQ(out.timeout, 0.25);
  EXPECT_EQ(out.route_key, 0xfeedbeefu);
  ASSERT_EQ(out.image.shape(), Shape({2, 3}));
  const Tensor expect = small_image();
  for (std::size_t i = 0; i < expect.numel(); ++i) {
    EXPECT_EQ(out.image.raw()[i], expect.raw()[i]) << i;
  }
}

TEST(Wire, ResponseRoundtrip) {
  ResponseFrame f;
  f.request_id = 7;
  f.serve_error = 3;
  f.model_version = 12;
  f.predicted = 4;
  f.batch_size = 8;
  f.shard = 1;
  f.latency = 0.002;
  f.probabilities = {0.1f, 0.9f};
  const std::string bytes = encode_response(f);

  FrameType type;
  std::string payload;
  ASSERT_TRUE(decode_one(bytes, type, payload));
  EXPECT_EQ(type, FrameType::kResponse);
  ResponseFrame out;
  std::string err;
  ASSERT_TRUE(decode_response(payload, out, err)) << err;
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_EQ(out.serve_error, 3);
  EXPECT_EQ(out.model_version, 12u);
  EXPECT_EQ(out.predicted, 4u);
  EXPECT_EQ(out.batch_size, 8u);
  EXPECT_EQ(out.shard, 1u);
  EXPECT_DOUBLE_EQ(out.latency, 0.002);
  EXPECT_EQ(out.probabilities, f.probabilities);
}

TEST(Wire, RejectRoundtrip) {
  RejectFrame f;
  f.request_id = 9;
  f.code = WireReject::kTooLarge;
  f.message = "payload over cap";
  const std::string bytes = encode_reject(f);

  FrameType type;
  std::string payload;
  ASSERT_TRUE(decode_one(bytes, type, payload));
  EXPECT_EQ(type, FrameType::kReject);
  RejectFrame out;
  std::string err;
  ASSERT_TRUE(decode_reject(payload, out, err)) << err;
  EXPECT_EQ(out.request_id, 9u);
  EXPECT_EQ(out.code, WireReject::kTooLarge);
  EXPECT_EQ(out.message, "payload over cap");
}

TEST(Wire, DecoderHandlesByteAtATimeDelivery) {
  // TCP has no message boundaries; the decoder must assemble a frame
  // from the least convenient chunking possible.
  const std::string bytes = encode_request(sample_request());
  FrameDecoder dec;
  FrameType type;
  std::string payload;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    dec.feed(&bytes[i], 1);
    EXPECT_FALSE(dec.next(type, payload)) << "frame complete early at " << i;
    EXPECT_EQ(dec.error(), WireError::kNone);
  }
  dec.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_TRUE(dec.next(type, payload));
  EXPECT_EQ(type, FrameType::kRequest);
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_FALSE(dec.mid_frame());
}

TEST(Wire, DecoderYieldsBackToBackFrames) {
  const std::string a = encode_request(sample_request());
  RejectFrame rf;
  rf.code = WireReject::kOverloaded;
  const std::string b = encode_reject(rf);
  const std::string both = a + b;

  FrameDecoder dec;
  dec.feed(both.data(), both.size());
  FrameType type;
  std::string payload;
  ASSERT_TRUE(dec.next(type, payload));
  EXPECT_EQ(type, FrameType::kRequest);
  ASSERT_TRUE(dec.next(type, payload));
  EXPECT_EQ(type, FrameType::kReject);
  EXPECT_FALSE(dec.next(type, payload));
}

TEST(Wire, BadMagicPoisonsImmediately) {
  // A stream that is wrong from byte 0 must poison before a full header
  // trickles in.
  FrameDecoder dec;
  dec.feed("HTTP", 4);
  FrameType type;
  std::string payload;
  EXPECT_FALSE(dec.next(type, payload));
  EXPECT_EQ(dec.error(), WireError::kBadMagic);
  // Poisoned streams reject further input.
  EXPECT_FALSE(dec.feed("more", 4));
}

TEST(Wire, BadVersionPoisons) {
  std::string bytes = encode_request(sample_request());
  bytes[8] = '2';
  FrameDecoder dec;
  dec.feed(bytes.data(), 9);
  FrameType type;
  std::string payload;
  EXPECT_FALSE(dec.next(type, payload));
  EXPECT_EQ(dec.error(), WireError::kBadVersion);
}

TEST(Wire, BadTypePoisons) {
  std::string bytes = encode_request(sample_request());
  bytes[9] = 77;
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  FrameType type;
  std::string payload;
  EXPECT_FALSE(dec.next(type, payload));
  EXPECT_EQ(dec.error(), WireError::kBadType);
}

TEST(Wire, OversizedLengthPoisonsWithoutBuffering) {
  // A hostile length field must be rejected from the header alone — the
  // decoder must not wait for (or allocate) the declared gigabytes.
  std::string header(kWireMagic, 9);
  header.push_back(1);  // request
  for (int i = 0; i < 4; ++i) header.push_back(static_cast<char>(0xff));
  FrameDecoder dec(/*max_payload=*/1024);
  dec.feed(header.data(), header.size());
  FrameType type;
  std::string payload;
  EXPECT_FALSE(dec.next(type, payload));
  EXPECT_EQ(dec.error(), WireError::kOversized);
}

TEST(Wire, CorruptedCrcPoisons) {
  std::string bytes = encode_request(sample_request());
  bytes[bytes.size() - 1] = static_cast<char>(bytes.back() ^ 0x01);
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  FrameType type;
  std::string payload;
  EXPECT_FALSE(dec.next(type, payload));
  EXPECT_EQ(dec.error(), WireError::kBadCrc);
}

TEST(WireFuzz, TruncationSweepNeverCrashesOrYields) {
  // Every proper prefix of a valid frame is either "incomplete, keep
  // waiting" or a typed error — never a frame, never a crash.
  const std::string bytes = encode_request(sample_request());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(bytes.data(), cut);
    FrameType type;
    std::string payload;
    EXPECT_FALSE(dec.next(type, payload)) << "cut=" << cut;
  }
}

TEST(WireFuzz, BitFlipSweepNeverYieldsTheOriginal) {
  // Damage any single byte: the decoder (or the payload decoder behind
  // it) must convict the frame — a flipped frame must never decode into
  // a valid request identical in acceptance to the original.
  const std::string bytes = encode_request(sample_request());
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x10);
    FrameDecoder dec;
    dec.feed(damaged.data(), damaged.size());
    FrameType type;
    std::string payload;
    if (!dec.next(type, payload)) {
      // Poisoned or waiting for more bytes (a grown length field):
      // either way the damage did not pass as a valid frame.
      continue;
    }
    // A frame came out: the flip must be caught by payload validation.
    RequestFrame out;
    std::string err;
    EXPECT_FALSE(decode_request(payload, out, err)) << "pos=" << pos;
  }
}

TEST(WireFuzz, HostileRequestPayloadsAreRejected) {
  RequestFrame valid = sample_request();
  const std::string good = encode_request(valid);
  FrameType type;
  std::string payload;
  ASSERT_TRUE(decode_one(good, type, payload));

  auto expect_reject = [](std::string p, const char* why) {
    RequestFrame out;
    std::string err;
    EXPECT_FALSE(decode_request(p, out, err)) << why;
    EXPECT_FALSE(err.empty()) << why;
  };

  // rank 0
  std::string p = payload;
  p[24] = 0;  // rank field (after id + timeout + route_key)
  expect_reject(p, "rank 0");
  // rank over the cap
  p = payload;
  p[24] = 9;
  expect_reject(p, "rank 9");
  // zero dim
  p = payload;
  for (int i = 0; i < 8; ++i) p[28 + i] = 0;
  expect_reject(p, "dim 0");
  // absurd dim (overflow bait): dims like 2^56 must die on the bounds
  // check, not wrap numel.
  p = payload;
  for (int i = 0; i < 8; ++i) p[28 + i] = static_cast<char>(0x7f);
  expect_reject(p, "huge dim");
  // NaN timeout
  p = payload;
  for (int i = 0; i < 8; ++i) p[8 + i] = static_cast<char>(0xff);
  expect_reject(p, "NaN timeout");
  // truncated pixels
  p = payload.substr(0, payload.size() - 1);
  expect_reject(p, "short pixels");
  // trailing garbage
  p = payload + "x";
  expect_reject(p, "long pixels");
  // every truncation of the payload
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    RequestFrame out;
    std::string err;
    EXPECT_FALSE(decode_request(payload.substr(0, cut), out, err))
        << "cut=" << cut;
  }
}

TEST(WireFuzz, RandomGarbagePayloadsNeverCrash) {
  // Seeded garbage thrown at all three payload decoders: any outcome but
  // a crash/over-read is acceptable; truth is they should all reject.
  Rng rng(0xbadf00d);
  for (int round = 0; round < 200; ++round) {
    const std::size_t len = rng.uniform_index(96);
    std::string p(len, '\0');
    for (char& c : p) c = static_cast<char>(rng.next_u64() & 0xff);
    RequestFrame rq;
    ResponseFrame rs;
    RejectFrame rj;
    std::string err;
    decode_request(p, rq, err);
    decode_response(p, rs, err);
    decode_reject(p, rj, err);
  }
  SUCCEED();
}

TEST(WireFuzz, RandomByteStreamsNeverCrashTheDecoder) {
  Rng rng(0x5afe);
  for (int round = 0; round < 50; ++round) {
    FrameDecoder dec(4096);
    std::string chunk(1 + rng.uniform_index(256), '\0');
    for (char& c : chunk) c = static_cast<char>(rng.next_u64() & 0xff);
    dec.feed(chunk.data(), chunk.size());
    FrameType type;
    std::string payload;
    while (dec.next(type, payload)) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace satd::net
