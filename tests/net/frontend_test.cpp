// Front-end tests over real unix/TCP sockets: request/response flow,
// ephemeral-port binds, typed rejects for malformed and oversized
// frames, the slow-loris read deadline, the connection limit, pipelined
// requests on one connection, and cancellation of requests abandoned by
// a dying connection.
#include "net/frontend.h"

#include <gtest/gtest.h>
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "net/client.h"
#include "net/fault.h"

namespace satd::net {
namespace {

Tensor tiny_image() { return Tensor::full(Shape{2, 2}, 0.5f); }

env::ListenAddress unix_addr(const std::string& name) {
  env::ListenAddress a;
  a.kind = env::ListenAddress::Kind::kUnix;
  a.path = testing::TempDir() + name;
  return a;
}

/// Sink that serves instantly: predicted = number of pixels, model
/// version 7. Good enough to prove bytes flow end to end.
FrontEndSink instant_sink() {
  FrontEndSink sink;
  sink.submit = [](const Tensor& image, double, std::uint64_t,
                   std::uint32_t* shard_out, std::uint64_t* id_out) {
    if (shard_out) *shard_out = 0;
    if (id_out) *id_out = 0;
    std::promise<serve::Response> p;
    serve::Response r;
    r.predicted = image.numel();
    r.model_version = 7;
    r.probabilities = {0.25f, 0.75f};
    p.set_value(std::move(r));
    return serve::Ticket(p.get_future());
  };
  return sink;
}

ClientConfig client_for(const env::ListenAddress& addr) {
  ClientConfig cfg;
  cfg.endpoints = {addr};
  cfg.connect_timeout = 2.0;
  cfg.request_timeout = 5.0;
  cfg.max_attempts = 2;
  return cfg;
}

/// Writes raw bytes (test-side; blocking with a coarse deadline).
void send_raw(const Fd& fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::write(fd.get(), bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        << std::strerror(errno);
    pollfd pfd{fd.get(), POLLOUT, 0};
    ::poll(&pfd, 1, 100);
  }
}

/// Reads until a frame or EOF; returns false on EOF/deadline.
bool recv_frame(const Fd& fd, FrameDecoder& dec, FrameType& type,
                std::string& payload, double deadline_s = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(deadline_s);
  for (;;) {
    if (dec.next(type, payload)) return true;
    if (dec.error() != WireError::kNone) return false;
    if (std::chrono::steady_clock::now() > deadline) return false;
    pollfd pfd{fd.get(), POLLIN, 0};
    if (::poll(&pfd, 1, 100) <= 0) continue;
    char buf[4096];
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n == 0) return false;
    if (n > 0) dec.feed(buf, static_cast<std::size_t>(n));
  }
}

/// True once read() observes EOF (server closed the connection).
bool await_eof(const Fd& fd, double deadline_s = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(deadline_s);
  char buf[4096];
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{fd.get(), POLLIN, 0};
    if (::poll(&pfd, 1, 100) <= 0) continue;
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n == 0) return true;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return true;  // reset counts as closed
    }
  }
  return false;
}

TEST(FrontEnd, ServesARequestOverAUnixSocket) {
  FrontEndConfig cfg;
  cfg.listen = unix_addr("fe_unix.sock");
  FrontEnd fe(cfg, instant_sink());
  fe.start();

  Client client(client_for(cfg.listen));
  const ClientResult r = client.request(tiny_image());
  ASSERT_TRUE(r.ok()) << to_string(r.error) << ": " << r.detail;
  EXPECT_EQ(r.predicted, 4u);
  EXPECT_EQ(r.model_version, 7u);
  EXPECT_EQ(r.attempts, 1u);
  ASSERT_EQ(r.probabilities.size(), 2u);
  EXPECT_FLOAT_EQ(r.probabilities[1], 0.75f);

  const FrontEndStats s = fe.stats();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.responses, 1u);
  fe.stop();
}

TEST(FrontEnd, BindsAnEphemeralTcpPort) {
  FrontEndConfig cfg;
  cfg.listen.kind = env::ListenAddress::Kind::kTcp;
  cfg.listen.host = "127.0.0.1";
  cfg.listen.port = 0;
  FrontEnd fe(cfg, instant_sink());
  fe.start();
  ASSERT_GT(fe.port(), 0);

  env::ListenAddress resolved = cfg.listen;
  resolved.port = fe.port();
  Client client(client_for(resolved));
  const ClientResult r = client.request(tiny_image());
  EXPECT_TRUE(r.ok()) << to_string(r.error) << ": " << r.detail;
  fe.stop();
}

TEST(FrontEnd, MalformedStreamEarnsTypedRejectAndClose) {
  FrontEndConfig cfg;
  cfg.listen = unix_addr("fe_malformed.sock");
  FrontEnd fe(cfg, instant_sink());
  fe.start();

  std::string err;
  Fd fd = connect_socket(cfg.listen, 2.0, err);
  ASSERT_TRUE(fd.valid()) << err;
  send_raw(fd, "GET / HTTP/1.1\r\n\r\n");

  FrameDecoder dec;
  FrameType type;
  std::string payload;
  ASSERT_TRUE(recv_frame(fd, dec, type, payload));
  ASSERT_EQ(type, FrameType::kReject);
  RejectFrame rej;
  ASSERT_TRUE(decode_reject(payload, rej, err));
  EXPECT_EQ(rej.code, WireReject::kMalformed);
  EXPECT_TRUE(await_eof(fd));
  EXPECT_GE(fe.stats().wire_errors, 1u);
  fe.stop();
}

TEST(FrontEnd, OversizedFrameEarnsTooLargeReject) {
  FrontEndConfig cfg;
  cfg.listen = unix_addr("fe_oversized.sock");
  cfg.max_payload = 32;  // below even a 1-pixel request's 40-byte payload
  FrontEnd fe(cfg, instant_sink());
  fe.start();

  std::string err;
  Fd fd = connect_socket(cfg.listen, 2.0, err);
  ASSERT_TRUE(fd.valid()) << err;
  RequestFrame req;
  req.request_id = 1;
  req.image = tiny_image();
  send_raw(fd, encode_request(req));

  FrameDecoder dec;
  FrameType type;
  std::string payload;
  ASSERT_TRUE(recv_frame(fd, dec, type, payload));
  ASSERT_EQ(type, FrameType::kReject);
  RejectFrame rej;
  ASSERT_TRUE(decode_reject(payload, rej, err));
  EXPECT_EQ(rej.code, WireReject::kTooLarge);
  EXPECT_TRUE(await_eof(fd));
  fe.stop();
}

TEST(FrontEnd, SlowLorisMidFrameConnectionIsClosed) {
  FrontEndConfig cfg;
  cfg.listen = unix_addr("fe_loris.sock");
  cfg.read_deadline = 0.05;
  FrontEnd fe(cfg, instant_sink());
  fe.start();

  std::string err;
  Fd fd = connect_socket(cfg.listen, 2.0, err);
  ASSERT_TRUE(fd.valid()) << err;
  const std::string frame = encode_request([] {
    RequestFrame r;
    r.request_id = 1;
    r.image = tiny_image();
    return r;
  }());
  // Half a frame, then silence: the read deadline must kill us.
  send_raw(fd, frame.substr(0, frame.size() / 2));
  EXPECT_TRUE(await_eof(fd));
  EXPECT_GE(fe.stats().slow_loris, 1u);

  // An IDLE connection (no partial frame) must NOT be reaped.
  Fd idle = connect_socket(cfg.listen, 2.0, err);
  ASSERT_TRUE(idle.valid()) << err;
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  send_raw(idle, frame);
  FrameDecoder dec;
  FrameType type;
  std::string payload;
  EXPECT_TRUE(recv_frame(idle, dec, type, payload));
  EXPECT_EQ(type, FrameType::kResponse);
  fe.stop();
}

TEST(FrontEnd, ConnectionLimitGetsOverloadedReject) {
  FrontEndConfig cfg;
  cfg.listen = unix_addr("fe_limit.sock");
  cfg.max_connections = 1;
  FrontEnd fe(cfg, instant_sink());
  fe.start();

  std::string err;
  Fd first = connect_socket(cfg.listen, 2.0, err);
  ASSERT_TRUE(first.valid()) << err;
  // Prove the first connection is actually registered before the second
  // arrives (the accept loop runs on the poll quantum).
  {
    RequestFrame req;
    req.request_id = 1;
    req.image = tiny_image();
    send_raw(first, encode_request(req));
    FrameDecoder dec;
    FrameType type;
    std::string payload;
    ASSERT_TRUE(recv_frame(first, dec, type, payload));
  }

  Fd second = connect_socket(cfg.listen, 2.0, err);
  ASSERT_TRUE(second.valid()) << err;
  FrameDecoder dec;
  FrameType type;
  std::string payload;
  ASSERT_TRUE(recv_frame(second, dec, type, payload));
  ASSERT_EQ(type, FrameType::kReject);
  RejectFrame rej;
  ASSERT_TRUE(decode_reject(payload, rej, err));
  EXPECT_EQ(rej.code, WireReject::kOverloaded);
  EXPECT_TRUE(await_eof(second));
  fe.stop();
}

TEST(FrontEnd, PipelinedRequestsAllComplete) {
  FrontEndConfig cfg;
  cfg.listen = unix_addr("fe_pipeline.sock");
  FrontEnd fe(cfg, instant_sink());
  fe.start();

  std::string err;
  Fd fd = connect_socket(cfg.listen, 2.0, err);
  ASSERT_TRUE(fd.valid()) << err;
  std::string burst;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    RequestFrame req;
    req.request_id = id;
    req.image = tiny_image();
    burst += encode_request(req);
  }
  send_raw(fd, burst);

  FrameDecoder dec;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3; ++i) {
    FrameType type;
    std::string payload;
    ASSERT_TRUE(recv_frame(fd, dec, type, payload));
    ASSERT_EQ(type, FrameType::kResponse);
    ResponseFrame resp;
    ASSERT_TRUE(decode_response(payload, resp, err));
    seen.insert(resp.request_id);
  }
  EXPECT_EQ(seen, (std::set<std::uint64_t>{1, 2, 3}));
  fe.stop();
}

TEST(FrontEnd, AbandonedConnectionCancelsItsPendingRequests) {
  // Sink that never resolves: the request parks in "pending" until the
  // client vanishes, at which point the cancel hook must fire.
  std::atomic<int> cancels{0};
  FrontEndSink sink;
  // The promise must outlive the ticket; park it in a shared_ptr.
  auto parked = std::make_shared<std::promise<serve::Response>>();
  sink.submit = [parked](const Tensor&, double, std::uint64_t,
                         std::uint32_t* shard_out, std::uint64_t* id_out) {
    if (shard_out) *shard_out = 3;
    if (id_out) *id_out = 99;  // admitted: cancellable
    return serve::Ticket(parked->get_future());
  };
  sink.cancel = [&cancels](std::uint32_t shard, std::uint64_t id) {
    EXPECT_EQ(shard, 3u);
    EXPECT_EQ(id, 99u);
    cancels.fetch_add(1);
    return true;
  };

  FrontEndConfig cfg;
  cfg.listen = unix_addr("fe_cancel.sock");
  FrontEnd fe(cfg, sink);
  fe.start();

  {
    std::string err;
    Fd fd = connect_socket(cfg.listen, 2.0, err);
    ASSERT_TRUE(fd.valid()) << err;
    RequestFrame req;
    req.request_id = 5;
    req.image = tiny_image();
    send_raw(fd, encode_request(req));
    // Wait until the request is actually admitted before abandoning it.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (fe.stats().requests < 1) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }  // fd closes here: the client walked away

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cancels.load() < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "cancel hook never fired";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fe.stats().cancelled, 1u);
  fe.stop();
}

}  // namespace
}  // namespace satd::net
