// Client retry/backoff tests: typed terminal errors, the seeded-jitter
// backoff schedule replayed exactly on a FakeClock (via injected
// connect-refused faults — no real ports, no real waiting), endpoint
// failover, and the retry/terminal classification of rejects and serve
// errors.
#include "net/client.h"

#include <gtest/gtest.h>

#include <future>
#include <string>

#include "net/fault.h"
#include "net/frontend.h"

namespace satd::net {
namespace {

Tensor tiny_image() { return Tensor::full(Shape{2, 2}, 0.5f); }

env::ListenAddress unix_addr(const std::string& name) {
  env::ListenAddress a;
  a.kind = env::ListenAddress::Kind::kUnix;
  a.path = testing::TempDir() + name;
  return a;
}

env::ListenAddress tcp_addr(std::uint16_t port) {
  env::ListenAddress a;
  a.kind = env::ListenAddress::Kind::kTcp;
  a.host = "127.0.0.1";
  a.port = port;
  return a;
}

FrontEndSink instant_sink(serve::ServeError error = serve::ServeError::kNone) {
  FrontEndSink sink;
  sink.submit = [error](const Tensor& image, double, std::uint64_t,
                        std::uint32_t*, std::uint64_t*) {
    std::promise<serve::Response> p;
    serve::Response r;
    r.error = error;
    r.predicted = image.numel();
    p.set_value(std::move(r));
    return serve::Ticket(p.get_future());
  };
  return sink;
}

class ClientFaults : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm(); }
  void TearDown() override { fault::disarm(); }
};

TEST_F(ClientFaults, ExhaustedConnectsReturnTypedErrorWithBackoffSchedule) {
  // Every connect refused (injected): the client must consume exactly
  // max_attempts tries, sleeping the seeded Backoff schedule between
  // them — replayable to the jitter digit from (policy, seed).
  fault::arm_connect_refused(100);
  ClientConfig cfg;
  cfg.endpoints = {tcp_addr(1)};
  cfg.max_attempts = 4;
  cfg.backoff_seed = 1234;
  FakeClock clock;
  Client client(cfg, clock);
  const ClientResult r = client.request(tiny_image());

  EXPECT_EQ(r.error, ClientError::kConnectFailed);
  EXPECT_EQ(r.attempts, 4u);
  EXPECT_NE(r.detail.find("injected"), std::string::npos);

  Backoff reference(cfg.backoff, cfg.backoff_seed);
  ASSERT_EQ(clock.sleeps().size(), 3u);  // attempts 2..4 sleep first
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(clock.sleeps()[i], reference.delay(i)) << i;
  }
}

TEST_F(ClientFaults, BackoffScheduleIsSeedReproducible) {
  auto run = [](std::uint64_t seed) {
    fault::arm_connect_refused(100);
    ClientConfig cfg;
    cfg.endpoints = {tcp_addr(1)};
    cfg.max_attempts = 3;
    cfg.backoff_seed = seed;
    FakeClock clock;
    Client client(cfg, clock);
    client.request(Tensor::full(Shape{2, 2}, 0.5f));
    fault::disarm();
    return clock.sleeps();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_F(ClientFaults, RefusedConnectFailsOverToTheLiveEndpoint) {
  FrontEndConfig fecfg;
  fecfg.listen = unix_addr("cl_failover.sock");
  FrontEnd fe(fecfg, instant_sink());
  fe.start();

  // Endpoint 0 refuses (injected, one shot); endpoint 1 is live.
  fault::arm_connect_refused(1);
  ClientConfig cfg;
  cfg.endpoints = {tcp_addr(1), fecfg.listen};
  cfg.max_attempts = 3;
  FakeClock clock;  // sleeps are instant; IO still real
  Client client(cfg, clock);
  const ClientResult r = client.request(tiny_image());
  ASSERT_TRUE(r.ok()) << to_string(r.error) << ": " << r.detail;
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(client.endpoint_cursor(), 1u);
  fe.stop();
}

TEST_F(ClientFaults, TooLargeRejectIsTerminalNotRetried) {
  FrontEndConfig fecfg;
  fecfg.listen = unix_addr("cl_toolarge.sock");
  fecfg.max_payload = 32;  // below even a 1-pixel request's 40-byte payload
  FrontEnd fe(fecfg, instant_sink());
  fe.start();

  ClientConfig cfg;
  cfg.endpoints = {fecfg.listen};
  cfg.max_attempts = 5;
  Client client(cfg);
  const ClientResult r = client.request(tiny_image());
  EXPECT_EQ(r.error, ClientError::kRejected);
  EXPECT_EQ(r.attempts, 1u);  // resending the same bytes cannot help
  EXPECT_NE(r.detail.find("too_large"), std::string::npos);
  fe.stop();
}

TEST_F(ClientFaults, TerminalServeErrorIsNotRetried) {
  FrontEndConfig fecfg;
  fecfg.listen = unix_addr("cl_nomodel.sock");
  FrontEnd fe(fecfg, instant_sink(serve::ServeError::kNoModel));
  fe.start();

  ClientConfig cfg;
  cfg.endpoints = {fecfg.listen};
  cfg.max_attempts = 5;
  Client client(cfg);
  const ClientResult r = client.request(tiny_image());
  EXPECT_EQ(r.error, ClientError::kServe);
  EXPECT_EQ(r.serve_error, serve::ServeError::kNoModel);
  EXPECT_EQ(r.attempts, 1u);
  fe.stop();
}

TEST_F(ClientFaults, TransientServeErrorIsRetriedUntilExhaustion) {
  FrontEndConfig fecfg;
  fecfg.listen = unix_addr("cl_full.sock");
  FrontEnd fe(fecfg, instant_sink(serve::ServeError::kQueueFull));
  fe.start();

  ClientConfig cfg;
  cfg.endpoints = {fecfg.listen};
  cfg.max_attempts = 3;
  FakeClock clock;
  Client client(cfg, clock);
  const ClientResult r = client.request(tiny_image());
  EXPECT_EQ(r.error, ClientError::kServe);
  EXPECT_EQ(r.serve_error, serve::ServeError::kQueueFull);
  EXPECT_EQ(r.attempts, 3u);  // kept trying: pressure is transient
  fe.stop();
}

TEST_F(ClientFaults, ConnectionReuseAcrossRequests) {
  FrontEndConfig fecfg;
  fecfg.listen = unix_addr("cl_reuse.sock");
  FrontEnd fe(fecfg, instant_sink());
  fe.start();

  ClientConfig cfg;
  cfg.endpoints = {fecfg.listen};
  Client client(cfg);
  for (int i = 0; i < 3; ++i) {
    const ClientResult r = client.request(tiny_image());
    ASSERT_TRUE(r.ok()) << r.detail;
    EXPECT_EQ(r.attempts, 1u);
  }
  // One connection served all three requests.
  EXPECT_EQ(fe.stats().accepted, 1u);
  fe.stop();
}

}  // namespace
}  // namespace satd::net
