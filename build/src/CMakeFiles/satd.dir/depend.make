# Empty dependencies file for satd.
# This may be replaced when dependencies are built.
