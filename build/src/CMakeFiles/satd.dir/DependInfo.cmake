
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attack.cpp" "src/CMakeFiles/satd.dir/attack/attack.cpp.o" "gcc" "src/CMakeFiles/satd.dir/attack/attack.cpp.o.d"
  "/root/repo/src/attack/bim.cpp" "src/CMakeFiles/satd.dir/attack/bim.cpp.o" "gcc" "src/CMakeFiles/satd.dir/attack/bim.cpp.o.d"
  "/root/repo/src/attack/fgsm.cpp" "src/CMakeFiles/satd.dir/attack/fgsm.cpp.o" "gcc" "src/CMakeFiles/satd.dir/attack/fgsm.cpp.o.d"
  "/root/repo/src/attack/mifgsm.cpp" "src/CMakeFiles/satd.dir/attack/mifgsm.cpp.o" "gcc" "src/CMakeFiles/satd.dir/attack/mifgsm.cpp.o.d"
  "/root/repo/src/attack/noise.cpp" "src/CMakeFiles/satd.dir/attack/noise.cpp.o" "gcc" "src/CMakeFiles/satd.dir/attack/noise.cpp.o.d"
  "/root/repo/src/attack/pgd.cpp" "src/CMakeFiles/satd.dir/attack/pgd.cpp.o" "gcc" "src/CMakeFiles/satd.dir/attack/pgd.cpp.o.d"
  "/root/repo/src/attack/targeted.cpp" "src/CMakeFiles/satd.dir/attack/targeted.cpp.o" "gcc" "src/CMakeFiles/satd.dir/attack/targeted.cpp.o.d"
  "/root/repo/src/common/cli.cpp" "src/CMakeFiles/satd.dir/common/cli.cpp.o" "gcc" "src/CMakeFiles/satd.dir/common/cli.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/satd.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/satd.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/satd.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/satd.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stopwatch.cpp" "src/CMakeFiles/satd.dir/common/stopwatch.cpp.o" "gcc" "src/CMakeFiles/satd.dir/common/stopwatch.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/satd.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/satd.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/alp_trainer.cpp" "src/CMakeFiles/satd.dir/core/alp_trainer.cpp.o" "gcc" "src/CMakeFiles/satd.dir/core/alp_trainer.cpp.o.d"
  "/root/repo/src/core/atda_loss.cpp" "src/CMakeFiles/satd.dir/core/atda_loss.cpp.o" "gcc" "src/CMakeFiles/satd.dir/core/atda_loss.cpp.o.d"
  "/root/repo/src/core/atda_trainer.cpp" "src/CMakeFiles/satd.dir/core/atda_trainer.cpp.o" "gcc" "src/CMakeFiles/satd.dir/core/atda_trainer.cpp.o.d"
  "/root/repo/src/core/bim_adv_trainer.cpp" "src/CMakeFiles/satd.dir/core/bim_adv_trainer.cpp.o" "gcc" "src/CMakeFiles/satd.dir/core/bim_adv_trainer.cpp.o.d"
  "/root/repo/src/core/factory.cpp" "src/CMakeFiles/satd.dir/core/factory.cpp.o" "gcc" "src/CMakeFiles/satd.dir/core/factory.cpp.o.d"
  "/root/repo/src/core/fgsm_adv_trainer.cpp" "src/CMakeFiles/satd.dir/core/fgsm_adv_trainer.cpp.o" "gcc" "src/CMakeFiles/satd.dir/core/fgsm_adv_trainer.cpp.o.d"
  "/root/repo/src/core/free_adv_trainer.cpp" "src/CMakeFiles/satd.dir/core/free_adv_trainer.cpp.o" "gcc" "src/CMakeFiles/satd.dir/core/free_adv_trainer.cpp.o.d"
  "/root/repo/src/core/pgd_adv_trainer.cpp" "src/CMakeFiles/satd.dir/core/pgd_adv_trainer.cpp.o" "gcc" "src/CMakeFiles/satd.dir/core/pgd_adv_trainer.cpp.o.d"
  "/root/repo/src/core/proposed_trainer.cpp" "src/CMakeFiles/satd.dir/core/proposed_trainer.cpp.o" "gcc" "src/CMakeFiles/satd.dir/core/proposed_trainer.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/satd.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/satd.dir/core/trainer.cpp.o.d"
  "/root/repo/src/core/vanilla_trainer.cpp" "src/CMakeFiles/satd.dir/core/vanilla_trainer.cpp.o" "gcc" "src/CMakeFiles/satd.dir/core/vanilla_trainer.cpp.o.d"
  "/root/repo/src/data/batcher.cpp" "src/CMakeFiles/satd.dir/data/batcher.cpp.o" "gcc" "src/CMakeFiles/satd.dir/data/batcher.cpp.o.d"
  "/root/repo/src/data/corruptions.cpp" "src/CMakeFiles/satd.dir/data/corruptions.cpp.o" "gcc" "src/CMakeFiles/satd.dir/data/corruptions.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/satd.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/satd.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/glyph.cpp" "src/CMakeFiles/satd.dir/data/glyph.cpp.o" "gcc" "src/CMakeFiles/satd.dir/data/glyph.cpp.o.d"
  "/root/repo/src/data/pgm.cpp" "src/CMakeFiles/satd.dir/data/pgm.cpp.o" "gcc" "src/CMakeFiles/satd.dir/data/pgm.cpp.o.d"
  "/root/repo/src/data/synthetic_digits.cpp" "src/CMakeFiles/satd.dir/data/synthetic_digits.cpp.o" "gcc" "src/CMakeFiles/satd.dir/data/synthetic_digits.cpp.o.d"
  "/root/repo/src/data/synthetic_fashion.cpp" "src/CMakeFiles/satd.dir/data/synthetic_fashion.cpp.o" "gcc" "src/CMakeFiles/satd.dir/data/synthetic_fashion.cpp.o.d"
  "/root/repo/src/metrics/chart.cpp" "src/CMakeFiles/satd.dir/metrics/chart.cpp.o" "gcc" "src/CMakeFiles/satd.dir/metrics/chart.cpp.o.d"
  "/root/repo/src/metrics/confusion.cpp" "src/CMakeFiles/satd.dir/metrics/confusion.cpp.o" "gcc" "src/CMakeFiles/satd.dir/metrics/confusion.cpp.o.d"
  "/root/repo/src/metrics/evaluator.cpp" "src/CMakeFiles/satd.dir/metrics/evaluator.cpp.o" "gcc" "src/CMakeFiles/satd.dir/metrics/evaluator.cpp.o.d"
  "/root/repo/src/metrics/experiment.cpp" "src/CMakeFiles/satd.dir/metrics/experiment.cpp.o" "gcc" "src/CMakeFiles/satd.dir/metrics/experiment.cpp.o.d"
  "/root/repo/src/metrics/model_cache.cpp" "src/CMakeFiles/satd.dir/metrics/model_cache.cpp.o" "gcc" "src/CMakeFiles/satd.dir/metrics/model_cache.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/satd.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/satd.dir/metrics/report.cpp.o.d"
  "/root/repo/src/metrics/robustness_report.cpp" "src/CMakeFiles/satd.dir/metrics/robustness_report.cpp.o" "gcc" "src/CMakeFiles/satd.dir/metrics/robustness_report.cpp.o.d"
  "/root/repo/src/metrics/transfer.cpp" "src/CMakeFiles/satd.dir/metrics/transfer.cpp.o" "gcc" "src/CMakeFiles/satd.dir/metrics/transfer.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/satd.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/CMakeFiles/satd.dir/nn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/CMakeFiles/satd.dir/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/CMakeFiles/satd.dir/nn/dense.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/dense.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/CMakeFiles/satd.dir/nn/dropout.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "src/CMakeFiles/satd.dir/nn/flatten.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/flatten.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/CMakeFiles/satd.dir/nn/init.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/init.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/satd.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/maxpool2d.cpp" "src/CMakeFiles/satd.dir/nn/maxpool2d.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/maxpool2d.cpp.o.d"
  "/root/repo/src/nn/model_io.cpp" "src/CMakeFiles/satd.dir/nn/model_io.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/model_io.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/satd.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/schedule.cpp" "src/CMakeFiles/satd.dir/nn/schedule.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/schedule.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/satd.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/zoo.cpp" "src/CMakeFiles/satd.dir/nn/zoo.cpp.o" "gcc" "src/CMakeFiles/satd.dir/nn/zoo.cpp.o.d"
  "/root/repo/src/tensor/im2col.cpp" "src/CMakeFiles/satd.dir/tensor/im2col.cpp.o" "gcc" "src/CMakeFiles/satd.dir/tensor/im2col.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/satd.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/satd.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/serialize.cpp" "src/CMakeFiles/satd.dir/tensor/serialize.cpp.o" "gcc" "src/CMakeFiles/satd.dir/tensor/serialize.cpp.o.d"
  "/root/repo/src/tensor/stats.cpp" "src/CMakeFiles/satd.dir/tensor/stats.cpp.o" "gcc" "src/CMakeFiles/satd.dir/tensor/stats.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/satd.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/satd.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
