file(REMOVE_RECURSE
  "libsatd.a"
)
