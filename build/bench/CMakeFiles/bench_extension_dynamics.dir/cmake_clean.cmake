file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_dynamics.dir/bench_extension_dynamics.cpp.o"
  "CMakeFiles/bench_extension_dynamics.dir/bench_extension_dynamics.cpp.o.d"
  "bench_extension_dynamics"
  "bench_extension_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
