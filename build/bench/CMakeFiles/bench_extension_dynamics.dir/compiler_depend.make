# Empty compiler generated dependencies file for bench_extension_dynamics.
# This may be replaced when dependencies are built.
