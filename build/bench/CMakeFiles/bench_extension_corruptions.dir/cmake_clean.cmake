file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_corruptions.dir/bench_extension_corruptions.cpp.o"
  "CMakeFiles/bench_extension_corruptions.dir/bench_extension_corruptions.cpp.o.d"
  "bench_extension_corruptions"
  "bench_extension_corruptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_corruptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
