# Empty compiler generated dependencies file for bench_extension_corruptions.
# This may be replaced when dependencies are built.
