file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_attacks.dir/bench_extension_attacks.cpp.o"
  "CMakeFiles/bench_extension_attacks.dir/bench_extension_attacks.cpp.o.d"
  "bench_extension_attacks"
  "bench_extension_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
