file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_transfer.dir/bench_extension_transfer.cpp.o"
  "CMakeFiles/bench_extension_transfer.dir/bench_extension_transfer.cpp.o.d"
  "bench_extension_transfer"
  "bench_extension_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
