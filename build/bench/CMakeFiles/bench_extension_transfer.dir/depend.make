# Empty dependencies file for bench_extension_transfer.
# This may be replaced when dependencies are built.
