file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reset.dir/bench_ablation_reset.cpp.o"
  "CMakeFiles/bench_ablation_reset.dir/bench_ablation_reset.cpp.o.d"
  "bench_ablation_reset"
  "bench_ablation_reset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
