# Empty compiler generated dependencies file for bench_ablation_reset.
# This may be replaced when dependencies are built.
