file(REMOVE_RECURSE
  "CMakeFiles/robust_training.dir/robust_training.cpp.o"
  "CMakeFiles/robust_training.dir/robust_training.cpp.o.d"
  "robust_training"
  "robust_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
