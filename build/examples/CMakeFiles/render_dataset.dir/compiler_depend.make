# Empty compiler generated dependencies file for render_dataset.
# This may be replaced when dependencies are built.
