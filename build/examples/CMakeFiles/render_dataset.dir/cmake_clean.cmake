file(REMOVE_RECURSE
  "CMakeFiles/render_dataset.dir/render_dataset.cpp.o"
  "CMakeFiles/render_dataset.dir/render_dataset.cpp.o.d"
  "render_dataset"
  "render_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
