
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/cli_test.cpp" "tests/CMakeFiles/test_common.dir/common/cli_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/cli_test.cpp.o.d"
  "/root/repo/tests/common/contract_test.cpp" "tests/CMakeFiles/test_common.dir/common/contract_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/contract_test.cpp.o.d"
  "/root/repo/tests/common/log_test.cpp" "tests/CMakeFiles/test_common.dir/common/log_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/log_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/stopwatch_test.cpp" "tests/CMakeFiles/test_common.dir/common/stopwatch_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/stopwatch_test.cpp.o.d"
  "/root/repo/tests/common/thread_pool_test.cpp" "tests/CMakeFiles/test_common.dir/common/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/satd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
