
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metrics/chart_test.cpp" "tests/CMakeFiles/test_metrics.dir/metrics/chart_test.cpp.o" "gcc" "tests/CMakeFiles/test_metrics.dir/metrics/chart_test.cpp.o.d"
  "/root/repo/tests/metrics/confusion_test.cpp" "tests/CMakeFiles/test_metrics.dir/metrics/confusion_test.cpp.o" "gcc" "tests/CMakeFiles/test_metrics.dir/metrics/confusion_test.cpp.o.d"
  "/root/repo/tests/metrics/evaluator_test.cpp" "tests/CMakeFiles/test_metrics.dir/metrics/evaluator_test.cpp.o" "gcc" "tests/CMakeFiles/test_metrics.dir/metrics/evaluator_test.cpp.o.d"
  "/root/repo/tests/metrics/experiment_test.cpp" "tests/CMakeFiles/test_metrics.dir/metrics/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/test_metrics.dir/metrics/experiment_test.cpp.o.d"
  "/root/repo/tests/metrics/model_cache_test.cpp" "tests/CMakeFiles/test_metrics.dir/metrics/model_cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_metrics.dir/metrics/model_cache_test.cpp.o.d"
  "/root/repo/tests/metrics/report_test.cpp" "tests/CMakeFiles/test_metrics.dir/metrics/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_metrics.dir/metrics/report_test.cpp.o.d"
  "/root/repo/tests/metrics/robustness_report_test.cpp" "tests/CMakeFiles/test_metrics.dir/metrics/robustness_report_test.cpp.o" "gcc" "tests/CMakeFiles/test_metrics.dir/metrics/robustness_report_test.cpp.o.d"
  "/root/repo/tests/metrics/transfer_test.cpp" "tests/CMakeFiles/test_metrics.dir/metrics/transfer_test.cpp.o" "gcc" "tests/CMakeFiles/test_metrics.dir/metrics/transfer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/satd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
