
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/batchnorm_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/batchnorm_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/batchnorm_test.cpp.o.d"
  "/root/repo/tests/nn/gradcheck_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/gradcheck_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/gradcheck_test.cpp.o.d"
  "/root/repo/tests/nn/layers_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/layers_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/layers_test.cpp.o.d"
  "/root/repo/tests/nn/loss_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/loss_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/loss_test.cpp.o.d"
  "/root/repo/tests/nn/model_io_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/model_io_test.cpp.o.d"
  "/root/repo/tests/nn/optimizer_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/optimizer_test.cpp.o.d"
  "/root/repo/tests/nn/schedule_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/schedule_test.cpp.o.d"
  "/root/repo/tests/nn/sequential_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/sequential_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/sequential_test.cpp.o.d"
  "/root/repo/tests/nn/zoo_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/zoo_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/zoo_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/satd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
