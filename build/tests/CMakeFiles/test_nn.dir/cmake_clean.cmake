file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/batchnorm_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/batchnorm_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/gradcheck_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/gradcheck_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/layers_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/layers_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/loss_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/loss_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/model_io_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/model_io_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/optimizer_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/optimizer_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/schedule_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/schedule_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/sequential_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/sequential_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/zoo_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/zoo_test.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
