
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/batcher_test.cpp" "tests/CMakeFiles/test_data.dir/data/batcher_test.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/batcher_test.cpp.o.d"
  "/root/repo/tests/data/corruptions_test.cpp" "tests/CMakeFiles/test_data.dir/data/corruptions_test.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/corruptions_test.cpp.o.d"
  "/root/repo/tests/data/dataset_test.cpp" "tests/CMakeFiles/test_data.dir/data/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/dataset_test.cpp.o.d"
  "/root/repo/tests/data/glyph_test.cpp" "tests/CMakeFiles/test_data.dir/data/glyph_test.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/glyph_test.cpp.o.d"
  "/root/repo/tests/data/pgm_test.cpp" "tests/CMakeFiles/test_data.dir/data/pgm_test.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/pgm_test.cpp.o.d"
  "/root/repo/tests/data/synthetic_test.cpp" "tests/CMakeFiles/test_data.dir/data/synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/test_data.dir/data/synthetic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/satd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
