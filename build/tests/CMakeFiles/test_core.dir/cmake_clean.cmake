file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/alp_trainer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/alp_trainer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/atda_loss_test.cpp.o"
  "CMakeFiles/test_core.dir/core/atda_loss_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o"
  "CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/extension_trainers_test.cpp.o"
  "CMakeFiles/test_core.dir/core/extension_trainers_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/factory_test.cpp.o"
  "CMakeFiles/test_core.dir/core/factory_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/proposed_trainer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/proposed_trainer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/trainer_properties_test.cpp.o"
  "CMakeFiles/test_core.dir/core/trainer_properties_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/trainer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/trainer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/training_integration_test.cpp.o"
  "CMakeFiles/test_core.dir/core/training_integration_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
