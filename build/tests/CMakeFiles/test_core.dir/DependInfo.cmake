
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/alp_trainer_test.cpp" "tests/CMakeFiles/test_core.dir/core/alp_trainer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/alp_trainer_test.cpp.o.d"
  "/root/repo/tests/core/atda_loss_test.cpp" "tests/CMakeFiles/test_core.dir/core/atda_loss_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/atda_loss_test.cpp.o.d"
  "/root/repo/tests/core/checkpoint_test.cpp" "tests/CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o.d"
  "/root/repo/tests/core/extension_trainers_test.cpp" "tests/CMakeFiles/test_core.dir/core/extension_trainers_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/extension_trainers_test.cpp.o.d"
  "/root/repo/tests/core/factory_test.cpp" "tests/CMakeFiles/test_core.dir/core/factory_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/factory_test.cpp.o.d"
  "/root/repo/tests/core/proposed_trainer_test.cpp" "tests/CMakeFiles/test_core.dir/core/proposed_trainer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/proposed_trainer_test.cpp.o.d"
  "/root/repo/tests/core/trainer_properties_test.cpp" "tests/CMakeFiles/test_core.dir/core/trainer_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/trainer_properties_test.cpp.o.d"
  "/root/repo/tests/core/trainer_test.cpp" "tests/CMakeFiles/test_core.dir/core/trainer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/trainer_test.cpp.o.d"
  "/root/repo/tests/core/training_integration_test.cpp" "tests/CMakeFiles/test_core.dir/core/training_integration_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/training_integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/satd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
