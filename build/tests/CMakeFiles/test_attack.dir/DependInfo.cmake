
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attack/attack_properties_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/attack_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/attack_properties_test.cpp.o.d"
  "/root/repo/tests/attack/bim_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/bim_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/bim_test.cpp.o.d"
  "/root/repo/tests/attack/fgsm_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/fgsm_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/fgsm_test.cpp.o.d"
  "/root/repo/tests/attack/mifgsm_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/mifgsm_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/mifgsm_test.cpp.o.d"
  "/root/repo/tests/attack/noise_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/noise_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/noise_test.cpp.o.d"
  "/root/repo/tests/attack/pgd_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/pgd_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/pgd_test.cpp.o.d"
  "/root/repo/tests/attack/targeted_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/targeted_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/targeted_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/satd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
