// Quickstart: the paper's Proposed defense in ~30 lines of library calls.
//
//   build/examples/quickstart
//
// Trains the simplified adversarial-training defense on the synthetic
// digits dataset and reports clean and under-attack accuracy.
#include <cstdio>

#include "attack/bim.h"
#include "core/proposed_trainer.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"

using namespace satd;

int main() {
  // 1. A dataset: 28x28 grayscale digit images in [0,1], 10 classes.
  data::SyntheticConfig data_cfg;
  data_cfg.train_size = 600;
  data_cfg.test_size = 200;
  data_cfg.seed = 1;
  const data::DatasetPair data = data::make_synthetic_digits(data_cfg);

  // 2. A classifier from the model zoo.
  Rng rng(42);
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  std::printf("%s", model.summary(nn::zoo::input_shape()).c_str());

  // 3. The Proposed trainer: single-step adversarial training with a
  //    persistent, epoch-advanced adversarial buffer (see paper Fig. 3b).
  core::TrainConfig train_cfg;
  train_cfg.epochs = 20;
  train_cfg.eps = 0.3f;          // l-inf budget, as in the paper (MNIST)
  train_cfg.step_fraction = 0.1f;  // per-epoch step = eps / 10
  train_cfg.reset_period = 10;   // restart the buffer every 10 epochs
  core::ProposedTrainer trainer(model, train_cfg);
  const core::TrainReport report = trainer.fit(
      data.train, [](const core::EpochStats& e) {
        std::printf("epoch %2zu  loss %.4f  (%.2fs)\n", e.epoch, e.mean_loss,
                    e.seconds);
      });
  std::printf("trained %zu epochs, %.2fs/epoch\n\n", report.epochs.size(),
              report.mean_epoch_seconds());

  // 4. Evaluate: clean accuracy and robustness to the iterative attack.
  const float clean = metrics::evaluate_clean(model, data.test);
  attack::Bim bim10(train_cfg.eps, 10);
  const float robust = metrics::evaluate_attack(model, data.test, bim10);
  std::printf("clean accuracy:     %.2f%%\n", clean * 100.0f);
  std::printf("BIM(10) accuracy:   %.2f%%  (eps = %.2f)\n", robust * 100.0f,
              train_cfg.eps);
  return 0;
}
