// serve_net: the SATDWIRE1 socket front end over a multi-shard router.
//
//   build/examples/serve_net --listen unix:/tmp/satd.sock --shards 2
//
// Trains a small classifier, fans it out to every shard of a
// ShardRouter, and serves it over a unix-domain or TCP socket until
// SIGINT/SIGTERM (or --duration seconds). The address comes from
// --listen, falling back to the SATD_LISTEN environment variable —
// both parsed by the hardened env::parse_listen_address (malformed
// input warns and falls back, never crashes the server).
//
// This binary is one half of the CI socket chaos drill: two instances
// are started on different sockets, traffic is driven through
// net_client against both, and one instance is kill -9'd mid-stream.
// The client must fail over to the survivor — so this process stays
// deliberately boring: serve until told to stop, then drain cleanly.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/cli.h"
#include "common/env.h"
#include "core/fgsm_adv_trainer.h"
#include "data/synthetic.h"
#include "net/frontend.h"
#include "nn/zoo.h"
#include "serve/shard_router.h"

using namespace satd;

namespace {
std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  CliParser cli("serve_net", "SATDWIRE1 socket front end over N shards");
  cli.add_string("listen", "", "address (unix:/path or host:port); "
                               "falls back to $SATD_LISTEN");
  cli.add_int("shards", 2, "number of server shards behind the router");
  cli.add_int("epochs", 2, "training epochs for the demo model");
  cli.add_double("duration", 0.0, "seconds to serve (0 = until signal)");
  cli.add_string("journal", "", "rollout audit JSONL path (optional)");
  if (!cli.parse(argc, argv)) return 2;

  env::ListenAddress listen;
  if (!cli.get_string("listen").empty()) {
    listen = env::parse_listen_address(cli.get_string("listen").c_str(),
                                       "--listen");
  }
  if (!listen.valid()) {
    listen = env::parse_listen_address(std::getenv("SATD_LISTEN"),
                                       "SATD_LISTEN");
  }
  if (!listen.valid()) {
    std::fprintf(stderr,
                 "serve_net: no usable address (--listen or SATD_LISTEN)\n");
    return 2;
  }

  // A quickly-trained model; the drill cares about the wire, not the
  // accuracy.
  data::SyntheticConfig data_cfg;
  data_cfg.train_size = 256;
  data_cfg.test_size = 64;
  data_cfg.seed = 1;
  const data::DatasetPair data = data::make_synthetic_digits(data_cfg);
  core::TrainConfig train_cfg;
  train_cfg.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  train_cfg.eps = 0.2f;
  Rng rng(42);
  nn::Sequential model = nn::zoo::build("mlp_small", rng);
  core::FgsmAdvTrainer(model, train_cfg).fit(data.train);

  serve::RouterConfig rcfg;
  rcfg.shards = static_cast<std::size_t>(cli.get_int("shards"));
  rcfg.server.model_name = "digits";
  rcfg.server.workers = 1;
  rcfg.journal_path = cli.get_string("journal");
  serve::ShardRouter router(rcfg);
  router.publish(model, "mlp_small");
  router.start();

  net::FrontEndConfig fcfg;
  fcfg.listen = listen;
  net::FrontEndSink sink;
  sink.submit = [&router](const Tensor& image, double timeout,
                          std::uint64_t key, std::uint32_t* shard_out,
                          std::uint64_t* id_out) {
    return router.submit(image, timeout, key, shard_out, id_out);
  };
  sink.cancel = [&router](std::uint32_t shard, std::uint64_t id) {
    return router.cancel(shard, id);
  };
  sink.tick = [&router] { router.tick(); };
  net::FrontEnd frontend(fcfg, sink);
  frontend.start();
  if (listen.kind == env::ListenAddress::Kind::kTcp) {
    listen.port = frontend.port();  // resolved (port 0 binds ephemeral)
  }
  std::printf("serve_net: %zu shard(s) on %s\n", router.size(),
              net::to_string(listen).c_str());
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const double duration = cli.get_double("duration");
  const auto t0 = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count() >= duration) {
      break;
    }
  }

  frontend.stop();
  router.drain();
  const net::FrontEndStats s = frontend.stats();
  std::printf("serve_net: accepted=%llu requests=%llu responses=%llu "
              "rejects=%llu wire_errors=%llu cancelled=%llu\n",
              (unsigned long long)s.accepted, (unsigned long long)s.requests,
              (unsigned long long)s.responses, (unsigned long long)s.rejects,
              (unsigned long long)s.wire_errors,
              (unsigned long long)s.cancelled);
  return 0;
}
