// Renders the synthetic datasets (and adversarial versions of them) to
// PGM images you can open in any viewer — the quickest way to see what
// the MNIST / Fashion-MNIST stand-ins actually look like.
//
//   build/examples/render_dataset --out /tmp/satd_images
#include <cstdio>
#include <filesystem>

#include "attack/bim.h"
#include "common/cli.h"
#include "core/vanilla_trainer.h"
#include "data/pgm.h"
#include "data/synthetic.h"
#include "nn/zoo.h"

using namespace satd;

namespace {

/// One montage row per class, `per_class` fresh samples each.
Tensor class_grid(const std::string& dataset, std::size_t per_class,
                  Rng& rng) {
  Tensor images(Shape{10 * per_class, 1, 28, 28});
  for (std::size_t cls = 0; cls < 10; ++cls) {
    for (std::size_t k = 0; k < per_class; ++k) {
      const Tensor img = dataset == "digits" ? data::render_digit(cls, rng)
                                             : data::render_fashion(cls, rng);
      images.set_row(cls * per_class + k, img);
    }
  }
  return data::montage(images, per_class);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("render_dataset",
                "write PGM montages of the synthetic datasets");
  cli.add_string("out", "satd_images", "output directory");
  cli.add_int("per-class", 8, "samples per class in the grid");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string out = cli.get_string("out");
    std::filesystem::create_directories(out);
    const auto per_class = static_cast<std::size_t>(cli.get_int("per-class"));

    Rng rng(1234);
    for (const std::string dataset : {"digits", "fashion"}) {
      const std::string path = out + "/" + dataset + ".pgm";
      data::write_pgm(path, class_grid(dataset, per_class, rng));
      std::printf("wrote %s (rows = classes 0-9)\n", path.c_str());
    }

    // Adversarial montage: one clean row, one BIM(10) row.
    data::SyntheticConfig cfg;
    cfg.train_size = 400;
    cfg.test_size = per_class;
    cfg.seed = 9;
    const data::DatasetPair pair = data::make_synthetic_digits(cfg);
    Rng model_rng(5);
    nn::Sequential model = nn::zoo::build("cnn_small", model_rng);
    core::TrainConfig tc;
    tc.epochs = 8;
    core::VanillaTrainer trainer(model, tc);
    std::printf("training a vanilla classifier for the adversarial row...\n");
    trainer.fit(pair.train);

    attack::Bim bim(0.3f, 10);
    const Tensor adv =
        bim.perturb(model, pair.test.images, pair.test.labels);
    Tensor both(Shape{2 * per_class, 1, 28, 28});
    for (std::size_t i = 0; i < per_class; ++i) {
      both.set_row(i, pair.test.images.slice_row(i));
      both.set_row(per_class + i, adv.slice_row(i));
    }
    const std::string adv_path = out + "/digits_adversarial.pgm";
    data::write_pgm(adv_path, data::montage(both, per_class));
    std::printf("wrote %s (top row clean, bottom row BIM(10) eps=0.3)\n",
                adv_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
