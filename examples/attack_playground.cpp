// Attack playground: train an undefended classifier, then watch each
// attack in the library break it across an eps sweep — and look at an
// actual adversarial example rendered as ASCII art.
//
//   build/examples/attack_playground [--dataset digits] [--iters 10]
#include <cstdio>
#include <memory>

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "attack/mifgsm.h"
#include "attack/pgd.h"
#include "common/cli.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "metrics/report.h"
#include "metrics/robustness_report.h"
#include "nn/zoo.h"
#include "tensor/ops.h"

using namespace satd;

namespace {

void print_ascii(const Tensor& image, const char* title) {
  // image: [1, 28, 28] in [0,1].
  std::printf("%s\n", title);
  const char* shades = " .:-=+*#%@";
  for (std::size_t y = 0; y < 28; y += 2) {  // halve rows: terminal aspect
    for (std::size_t x = 0; x < 28; ++x) {
      const float v =
          0.5f * (image.at(std::size_t{0}, y, x) +
                  image.at(std::size_t{0}, std::min<std::size_t>(y + 1, 27), x));
      std::putchar(shades[static_cast<int>(v * 9.999f)]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("attack_playground",
                "break an undefended classifier with every attack");
  cli.add_string("dataset", "digits", "digits|fashion");
  cli.add_int("iters", 10, "iterations for the iterative attacks");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto iters = static_cast<std::size_t>(cli.get_int("iters"));

    data::SyntheticConfig data_cfg;
    data_cfg.train_size = 600;
    data_cfg.test_size = 200;
    data_cfg.seed = 3;
    const data::DatasetPair data =
        data::make_dataset(cli.get_string("dataset"), data_cfg);

    Rng rng(7);
    nn::Sequential model = nn::zoo::build("cnn_small", rng);
    core::TrainConfig cfg;
    cfg.epochs = 12;
    core::VanillaTrainer trainer(model, cfg);
    std::printf("training an undefended classifier...\n");
    trainer.fit(data.train);
    std::printf("clean accuracy: %.2f%%\n\n",
                metrics::evaluate_clean(model, data.test) * 100.0f);

    // Accuracy under each attack across an eps sweep.
    metrics::Table table({"eps", "FGSM", "BIM", "PGD", "MI-FGSM"});
    for (float eps : {0.05f, 0.1f, 0.2f, 0.3f}) {
      attack::Fgsm fgsm(eps);
      attack::Bim bim(eps, iters);
      Rng attack_rng(1);
      attack::Pgd pgd(eps, iters, eps / iters, attack_rng);
      attack::MiFgsm mi(eps, iters, eps / iters);
      char eps_label[16];
      std::snprintf(eps_label, sizeof eps_label, "%.2f", eps);
      table.add_row(
          {eps_label,
           metrics::percent(metrics::evaluate_attack(model, data.test, fgsm)),
           metrics::percent(metrics::evaluate_attack(model, data.test, bim)),
           metrics::percent(metrics::evaluate_attack(model, data.test, pgd)),
           metrics::percent(metrics::evaluate_attack(model, data.test, mi))});
    }
    std::fputs(table.to_string().c_str(), stdout);

    // Show one adversarial example.
    Tensor image(Shape{1, 1, 28, 28});
    image.set_row(0, data.test.images.slice_row(0));
    const std::vector<std::size_t> label{data.test.labels[0]};
    attack::Bim bim(0.3f, iters);
    const Tensor adv = bim.perturb(model, image, label);
    const auto clean_pred = ops::argmax_rows(model.forward(image, false))[0];
    const auto adv_pred = ops::argmax_rows(model.forward(adv, false))[0];
    std::printf("\ntrue label: %zu — clean prediction: %zu — adversarial "
                "prediction: %zu (max |delta| = %.2f)\n\n",
                label[0], clean_pred, adv_pred,
                ops::max_abs_diff(adv.slice_row(0), image.slice_row(0)));
    print_ascii(image.slice_row(0), "clean:");
    print_ascii(adv.slice_row(0), "adversarial:");

    // Detailed statistics for the strongest attack in the sweep.
    attack::Bim strongest(0.3f, iters);
    std::printf("\n%s", metrics::robustness_report(model, data.test,
                                                   strongest)
                            .to_string()
                            .c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
