// Full robust-training walkthrough with a CLI: pick any of the paper's
// five methods, train it on either synthetic dataset, evaluate against
// the full attack battery and (optionally) save the model.
//
//   build/examples/robust_training --method proposed --dataset digits \
//       --epochs 20 --eps 0.3 --save model.bin
#include <cstdio>

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "common/cli.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "metrics/confusion.h"
#include "metrics/evaluator.h"
#include "nn/model_io.h"
#include "nn/zoo.h"

using namespace satd;

int main(int argc, char** argv) {
  CliParser cli("robust_training",
                "train any of the paper's five methods and evaluate it");
  cli.add_string("method", "proposed",
                 "vanilla|fgsm_adv|bim_adv|atda|proposed");
  cli.add_string("dataset", "digits", "digits|fashion");
  cli.add_string("model", "cnn_small", "model zoo spec");
  cli.add_int("epochs", 20, "training epochs");
  cli.add_int("train-size", 800, "training examples");
  cli.add_int("test-size", 300, "test examples");
  cli.add_double("eps", 0.3, "l-inf attack budget");
  cli.add_int("bim-iters", 10, "BIM iterations (bim_adv only)");
  cli.add_int("seed", 42, "experiment seed");
  cli.add_string("save", "", "path to save the trained model (optional)");
  cli.add_flag("confusion", "print the clean confusion matrix");
  try {
    if (!cli.parse(argc, argv)) return 0;

    data::SyntheticConfig data_cfg;
    data_cfg.train_size = static_cast<std::size_t>(cli.get_int("train-size"));
    data_cfg.test_size = static_cast<std::size_t>(cli.get_int("test-size"));
    data_cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const data::DatasetPair data =
        data::make_dataset(cli.get_string("dataset"), data_cfg);

    Rng rng(data_cfg.seed);
    nn::Sequential model = nn::zoo::build(cli.get_string("model"), rng);

    core::TrainConfig cfg;
    cfg.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    cfg.eps = static_cast<float>(cli.get_double("eps"));
    cfg.seed = data_cfg.seed;
    cfg.bim_iterations = static_cast<std::size_t>(cli.get_int("bim-iters"));
    cfg.reset_period = cfg.epochs >= 30 ? 20 : std::max<std::size_t>(1, cfg.epochs / 2);

    auto trainer = core::make_trainer(cli.get_string("method"), model, cfg);
    std::printf("training %s on %s (%zu examples, %zu epochs, eps=%.2f)\n",
                trainer->name().c_str(), data.train.name.c_str(),
                data.train.size(), cfg.epochs, cfg.eps);
    const core::TrainReport report =
        trainer->fit(data.train, [](const core::EpochStats& e) {
          if (e.epoch % 5 == 0) {
            std::printf("  epoch %2zu  loss %.4f\n", e.epoch, e.mean_loss);
          }
        });
    std::printf("done: %.2fs/epoch, final loss %.4f\n\n",
                report.mean_epoch_seconds(), report.final_loss());

    attack::Fgsm fgsm(cfg.eps);
    attack::Bim bim10(cfg.eps, 10), bim30(cfg.eps, 30);
    std::printf("clean accuracy:    %6.2f%%\n",
                metrics::evaluate_clean(model, data.test) * 100.0f);
    std::printf("FGSM accuracy:     %6.2f%%\n",
                metrics::evaluate_attack(model, data.test, fgsm) * 100.0f);
    std::printf("BIM(10) accuracy:  %6.2f%%\n",
                metrics::evaluate_attack(model, data.test, bim10) * 100.0f);
    std::printf("BIM(30) accuracy:  %6.2f%%\n",
                metrics::evaluate_attack(model, data.test, bim30) * 100.0f);

    if (cli.get_flag("confusion")) {
      std::printf("\nclean confusion matrix:\n%s",
                  metrics::confusion_on(model, data.test).to_string().c_str());
    }

    if (const std::string& path = cli.get_string("save"); !path.empty()) {
      nn::save_model_file(path, model, cli.get_string("model"));
      std::printf("\nmodel saved to %s\n", path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
