// Side-by-side comparison of two defensive methods — the interactive
// version of Table I for any pair of methods.
//
//   build/examples/compare_defenses --left atda --right proposed
#include <cstdio>

#include "attack/bim.h"
#include "attack/fgsm.h"
#include "common/cli.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "metrics/report.h"
#include "nn/zoo.h"

using namespace satd;

namespace {

struct Outcome {
  std::string name;
  float clean, fgsm, bim10, bim30;
  double epoch_seconds;
};

Outcome run(const std::string& method, const data::DatasetPair& data,
            const core::TrainConfig& cfg, const std::string& spec) {
  Rng rng(cfg.seed);
  nn::Sequential model = nn::zoo::build(spec, rng);
  auto trainer = core::make_trainer(method, model, cfg);
  std::printf("training %s...\n", trainer->name().c_str());
  const core::TrainReport report = trainer->fit(data.train);

  attack::Fgsm fgsm(cfg.eps);
  attack::Bim bim10(cfg.eps, 10), bim30(cfg.eps, 30);
  return Outcome{trainer->name(),
                 metrics::evaluate_clean(model, data.test),
                 metrics::evaluate_attack(model, data.test, fgsm),
                 metrics::evaluate_attack(model, data.test, bim10),
                 metrics::evaluate_attack(model, data.test, bim30),
                 report.mean_epoch_seconds()};
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("compare_defenses", "train two methods and compare them");
  cli.add_string("left", "atda", "first method");
  cli.add_string("right", "proposed", "second method");
  cli.add_string("dataset", "digits", "digits|fashion");
  cli.add_string("model", "cnn_small", "model zoo spec");
  cli.add_int("epochs", 20, "training epochs");
  cli.add_int("train-size", 800, "training examples");
  cli.add_double("eps", 0.3, "l-inf attack budget");
  try {
    if (!cli.parse(argc, argv)) return 0;

    data::SyntheticConfig data_cfg;
    data_cfg.train_size = static_cast<std::size_t>(cli.get_int("train-size"));
    data_cfg.test_size = 300;
    data_cfg.seed = 5;
    const data::DatasetPair data =
        data::make_dataset(cli.get_string("dataset"), data_cfg);

    core::TrainConfig cfg;
    cfg.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    cfg.eps = static_cast<float>(cli.get_double("eps"));
    cfg.seed = 9;
    cfg.reset_period =
        cfg.epochs >= 30 ? 20 : std::max<std::size_t>(1, cfg.epochs / 2);

    const Outcome left =
        run(cli.get_string("left"), data, cfg, cli.get_string("model"));
    const Outcome right =
        run(cli.get_string("right"), data, cfg, cli.get_string("model"));

    std::printf("\n");
    metrics::Table table(
        {"metric", left.name, right.name, "advantage"});
    auto row = [&](const char* metric, float a, float b) {
      table.add_row({metric, metrics::percent(a), metrics::percent(b),
                     a > b ? left.name : (b > a ? right.name : "tie")});
    };
    row("clean", left.clean, right.clean);
    row("FGSM", left.fgsm, right.fgsm);
    row("BIM(10)", left.bim10, right.bim10);
    row("BIM(30)", left.bim30, right.bim30);
    table.add_row({"s/epoch", metrics::seconds(left.epoch_seconds),
                   metrics::seconds(right.epoch_seconds),
                   left.epoch_seconds < right.epoch_seconds ? left.name
                                                            : right.name});
    std::fputs(table.to_string().c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
