// serve_demo: the micro-batching inference server end to end.
//
//   build/examples/serve_demo
//
// Trains a small classifier, publishes it into the model registry, serves
// concurrent requests through the batching server, hot-swaps in a more
// robust model mid-traffic, and prints the serving + robustness-monitor
// telemetry at the end.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/fgsm_adv_trainer.h"
#include "core/vanilla_trainer.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "serve/server.h"

using namespace satd;

int main() {
  // 1. Two quickly-trained classifiers: a vanilla one to launch with and
  //    an adversarially trained one to hot-swap in.
  data::SyntheticConfig data_cfg;
  data_cfg.train_size = 400;
  data_cfg.test_size = 200;
  data_cfg.seed = 1;
  const data::DatasetPair data = data::make_synthetic_digits(data_cfg);

  core::TrainConfig train_cfg;
  train_cfg.epochs = 5;
  train_cfg.eps = 0.2f;

  Rng rng(42);
  nn::Sequential vanilla = nn::zoo::build("cnn_small", rng);
  core::VanillaTrainer(vanilla, train_cfg).fit(data.train);

  Rng rng2(43);
  nn::Sequential robust = nn::zoo::build("cnn_small", rng2);
  core::FgsmAdvTrainer(robust, train_cfg).fit(data.train);

  // 2. Publish v1 and start the server: 2 workers, batches of up to 8,
  //    a 2 ms batching window, and the sampling robustness monitor.
  serve::ModelRegistry registry;
  registry.publish("digits", vanilla, "cnn_small");

  serve::ServerConfig cfg;
  cfg.model_name = "digits";
  cfg.workers = 2;
  cfg.enable_monitor = true;
  cfg.monitor.sample_period = 8;  // probe 1 in 8 requests
  serve::Server server(registry, cfg);
  server.start();

  // 3. Drive traffic from two client threads; hot-swap to the robust
  //    model halfway through. In-flight batches finish on v1; later
  //    batches are served by v2 — never a mixture.
  const std::size_t per_client = 100;
  auto client = [&](std::uint64_t seed) {
    Rng r(seed);
    for (std::size_t i = 0; i < per_client; ++i) {
      const Tensor image =
          data.test.images.slice_row(r.uniform_index(data.test.size()));
      serve::Response resp = server.submit(image, /*timeout=*/0.5).wait();
      if (resp.error != serve::ServeError::kNone) {
        std::printf("request rejected: %s\n", serve::to_string(resp.error));
      }
    }
  };
  std::thread c1(client, 7);
  std::thread c2(client, 8);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::uint64_t v2 = registry.publish("digits", robust, "cnn_small");
  std::printf("hot-swapped model 'digits' to v%llu mid-traffic\n",
              static_cast<unsigned long long>(v2));
  c1.join();
  c2.join();
  server.drain();

  // 4. Telemetry.
  const serve::StatsSnapshot s = server.stats().snapshot();
  std::printf("\nserved %zu requests in %zu batches (mean batch %.2f)\n",
              s.served, s.batches, s.mean_batch);
  std::printf("latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n",
              s.p50 * 1e3, s.p95 * 1e3, s.p99 * 1e3);
  std::printf("rejected: full=%zu infeasible=%zu stopping=%zu  "
              "deadline misses=%zu\n",
              s.rejected_full, s.rejected_infeasible, s.rejected_stopping,
              s.deadline_misses);
  const serve::MonitorReport m = server.monitor()->report();
  std::printf("monitor: observed=%zu probed=%zu robust_fraction=%.2f "
              "alarms=%zu\n",
              m.observed, m.probed, m.robust_fraction, m.alarms);
  return 0;
}
