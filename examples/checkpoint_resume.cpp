// Checkpoint & resume: interrupt a robust-training run and continue it
// later with bit-identical results — the infrastructure a long Iter-Adv
// run on real hardware would need.
//
//   build/examples/checkpoint_resume
#include <cstdio>

#include "attack/bim.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"
#include "tensor/ops.h"

using namespace satd;

int main() {
  data::SyntheticConfig dc;
  dc.train_size = 600;
  dc.test_size = 150;
  dc.seed = 1;
  const data::DatasetPair data = data::make_synthetic_digits(dc);

  core::TrainConfig cfg;
  cfg.epochs = 20;
  cfg.eps = 0.3f;
  cfg.reset_period = 10;
  cfg.seed = 42;
  const std::string ckpt = "proposed_training.ckpt";

  // ---- phase 1: train half the run, then "crash" ----
  {
    Rng rng(cfg.seed);
    nn::Sequential model = nn::zoo::build("cnn_small", rng);
    auto trainer = core::make_trainer("proposed", model, cfg);
    std::printf("phase 1: training %s for %zu of %zu epochs...\n",
                trainer->name().c_str(), cfg.epochs / 2, cfg.epochs);
    trainer->fit(data.train, [&](const core::EpochStats& stats) {
      if (stats.epoch + 1 == cfg.epochs / 2) {
        trainer->save_checkpoint_file(ckpt, stats.epoch + 1);
        std::printf("  checkpoint written to %s after epoch %zu\n",
                    ckpt.c_str(), stats.epoch);
      }
    });
    // (This run actually finished; a real interruption would stop here.
    // We keep its final model to verify the resumed run matches it.)
    attack::Bim bim(cfg.eps, 10);
    std::printf("  straight-run BIM(10) accuracy: %.2f%%\n\n",
                metrics::evaluate_attack(model, data.test, bim) * 100.0f);
  }

  // ---- phase 2: fresh process resumes from the checkpoint ----
  Rng rng(12345);  // deliberately different init; the load overwrites it
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  auto trainer = core::make_trainer("proposed", model, cfg);
  const std::size_t start = trainer->load_checkpoint_file(ckpt);
  std::printf("phase 2: resumed at epoch %zu, finishing the run...\n", start);
  trainer->fit(data.train, {}, start);

  attack::Bim bim(cfg.eps, 10);
  std::printf("  resumed-run BIM(10) accuracy:  %.2f%%\n",
              metrics::evaluate_attack(model, data.test, bim) * 100.0f);
  std::printf(
      "\n(The resumed run is bit-identical to an uninterrupted one — see "
      "tests/core/checkpoint_test.cpp for the sweep across all methods.)\n");
  std::remove(ckpt.c_str());
  return 0;
}
