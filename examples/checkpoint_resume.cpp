// Graceful shutdown & resume: interrupt a robust-training run with
// SIGINT/SIGTERM, let it write a final epoch-boundary checkpoint, and
// continue it later with bit-identical results — the infrastructure a
// long Iter-Adv run on real hardware needs.
//
// A signal handler sets a stop flag; the trainer polls it between
// batches, rolls back to the last completed epoch boundary, and returns
// early. The checkpoint written then is exactly what an uninterrupted
// run would have saved at that boundary, so the resumed run matches it
// bit for bit.
//
//   build/examples/checkpoint_resume
#include <csignal>
#include <cstdio>

#include "attack/bim.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "metrics/evaluator.h"
#include "nn/zoo.h"
#include "tensor/ops.h"

using namespace satd;

namespace {
// Signal handlers may only touch lock-free sig_atomic_t flags; all real
// shutdown work (checkpoint write) happens on the training thread.
volatile std::sig_atomic_t g_stop = 0;
void handle_stop_signal(int) { g_stop = 1; }
}  // namespace

int main() {
  data::SyntheticConfig dc;
  dc.train_size = 600;
  dc.test_size = 150;
  dc.seed = 1;
  const data::DatasetPair data = data::make_synthetic_digits(dc);

  core::TrainConfig cfg;
  cfg.epochs = 20;
  cfg.eps = 0.3f;
  cfg.reset_period = 10;
  cfg.seed = 42;
  const std::string ckpt = "proposed_training.ckpt";

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  // ---- phase 1: train until the stop signal arrives ----
  {
    Rng rng(cfg.seed);
    nn::Sequential model = nn::zoo::build("cnn_small", rng);
    auto trainer = core::make_trainer("proposed", model, cfg);
    trainer->set_stop_check([] { return g_stop != 0; });
    std::printf(
        "phase 1: training %s for up to %zu epochs (Ctrl-C to stop "
        "gracefully)...\n",
        trainer->name().c_str(), cfg.epochs);
    // For a self-contained demo, deliver the signal ourselves halfway
    // through — exactly what an operator's Ctrl-C would do.
    const core::TrainReport report =
        trainer->fit(data.train, [&](const core::EpochStats& stats) {
          if (stats.epoch + 1 == cfg.epochs / 2) {
            std::printf("  sending SIGINT to ourselves after epoch %zu...\n",
                        stats.epoch);
            std::raise(SIGINT);
          }
        });
    const std::size_t done = report.epochs.size();
    if (report.stopped_early) {
      std::printf("  stop flag seen between batches; %zu epochs completed\n",
                  done);
    }
    trainer->save_checkpoint_file(ckpt, done);
    std::printf("  final checkpoint written to %s (next epoch %zu); "
                "exiting cleanly\n\n",
                ckpt.c_str(), done);
  }

  // ---- phase 2: fresh process resumes from the checkpoint ----
  g_stop = 0;
  Rng rng(12345);  // deliberately different init; the load overwrites it
  nn::Sequential model = nn::zoo::build("cnn_small", rng);
  auto trainer = core::make_trainer("proposed", model, cfg);
  const std::size_t start = trainer->load_checkpoint_file(ckpt);
  std::printf("phase 2: resumed at epoch %zu, finishing the run...\n", start);
  trainer->fit(data.train, {}, start);

  attack::Bim bim(cfg.eps, 10);
  std::printf("  resumed-run BIM(10) accuracy:  %.2f%%\n",
              metrics::evaluate_attack(model, data.test, bim) * 100.0f);
  std::printf(
      "\n(The resumed run is bit-identical to an uninterrupted one — see "
      "tests/core/checkpoint_test.cpp and tests/fault/ for the sweeps.)\n");
  std::remove(ckpt.c_str());
  return 0;
}
