// net_client: drive SATDWIRE1 requests at one or more serve_net
// front ends, with retry/backoff and endpoint failover.
//
//   build/examples/net_client --connect unix:/tmp/a.sock,unix:/tmp/b.sock \
//       --requests 200
//
// Sends synthetic images and exits 0 only when every request resolved
// successfully — possibly after retries and failover. This is the
// client half of the CI socket chaos drill: while it runs, one of the
// two serve_net processes is kill -9'd; the run must still end cleanly
// on the survivor, with typed errors and no hang.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "net/client.h"

using namespace satd;

int main(int argc, char** argv) {
  CliParser cli("net_client", "SATDWIRE1 load/failover client");
  cli.add_string("connect", "", "comma-separated endpoints "
                                "(unix:/path or host:port)");
  cli.add_int("requests", 100, "requests to send");
  cli.add_int("max-attempts", 6, "tries per request across endpoints");
  cli.add_double("timeout", 5.0, "per-request timeout (seconds)");
  cli.add_int("seed", 7, "image + backoff jitter seed");
  if (!cli.parse(argc, argv)) return 2;

  net::ClientConfig cfg;
  const std::string spec = cli.get_string("connect");
  for (std::size_t start = 0; start <= spec.size();) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(start, comma - start);
    if (!token.empty()) {
      const env::ListenAddress a =
          env::parse_listen_address(token.c_str(), "--connect");
      if (!a.valid()) {
        std::fprintf(stderr, "net_client: bad endpoint '%s'\n",
                     token.c_str());
        return 2;
      }
      cfg.endpoints.push_back(a);
    }
    start = comma + 1;
  }
  if (cfg.endpoints.empty()) {
    std::fprintf(stderr, "net_client: --connect is required\n");
    return 2;
  }
  cfg.max_attempts = static_cast<std::size_t>(cli.get_int("max-attempts"));
  cfg.request_timeout = cli.get_double("timeout");
  cfg.backoff_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // Synthetic images matching serve_net's model input.
  data::SyntheticConfig data_cfg;
  data_cfg.train_size = 1;
  data_cfg.test_size = 64;
  data_cfg.seed = 2;
  const data::DatasetPair data = data::make_synthetic_digits(data_cfg);

  net::Client client(cfg);
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::size_t total = static_cast<std::size_t>(cli.get_int("requests"));
  std::size_t ok = 0, failed = 0, retried = 0;
  std::uint64_t attempts = 0;
  std::string last_error;
  for (std::size_t i = 0; i < total; ++i) {
    const Tensor image =
        data.test.images.slice_row(rng.uniform_index(data.test.size()));
    const net::ClientResult r =
        client.request(image, /*timeout=*/0.0, /*route_key=*/i + 1);
    attempts += r.attempts;
    if (r.attempts > 1) ++retried;
    if (r.ok()) {
      ++ok;
    } else {
      ++failed;
      last_error = std::string(net::to_string(r.error)) + ": " + r.detail;
    }
  }

  std::printf("net_client: ok=%zu failed=%zu retried=%zu attempts=%llu "
              "endpoint=%zu\n",
              ok, failed, retried, (unsigned long long)attempts,
              client.endpoint_cursor());
  if (failed != 0) {
    std::fprintf(stderr, "net_client: last error: %s\n", last_error.c_str());
    return 1;
  }
  return 0;
}
